"""Collector adapters: existing counter structs -> the metrics registry.

The dataplane and controller keep their plain-int counters
(:class:`~repro.dataplane.hmux.HMuxCounters`,
:class:`~repro.dataplane.smux.SMuxCounters`,
:class:`~repro.dataplane.hostagent.VipMeter`,
:class:`~repro.core.controller.ProgrammingStats`, the journal's lifetime
counters) — this module *registers them into* the registry by installing
one named collector that mirrors them into typed instruments at scrape
time.  The hot paths never see the registry.

:class:`ControllerInstrumentation` also maintains the two fleet-level
series the conservation laws need:

* ``duet_forwarded_packets_total`` — cumulative packets counted by any
  mux, **reset-proof**: a failed switch wipes its ``HMuxCounters`` and a
  failed SMux leaves the fleet, but the cumulative view folds the lost
  epoch in (per-key high-watermark accounting that survives controller
  crash-restarts, because the instrumentation object outlives the
  controller it observes — :meth:`~ControllerInstrumentation.rebind`).
* ``duet_delivered_packets_total`` — per-VIP deliveries metered by host
  agents (which are never wiped).

Conservation laws (:func:`conservation_violations`), computed purely
from registry samples:

1. Per mux, per plane: ``packets == sum(per-VIP packets)`` — every
   counted packet is attributed to exactly one VIP (drops/no-match are
   counted separately and excluded on both sides).
2. Fleet-wide: ``delivered <= forwarded`` — a host agent can only meter
   a packet some mux first counted (the strict inequality absorbs
   deliveries that fail *after* the mux counted, e.g. unhealthy DIPs).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.net.addressing import format_ip
from repro.obs.registry import MetricsRegistry

#: Default metric-name prefix (see docs/OBSERVABILITY.md for the naming
#: conventions).
DEFAULT_PREFIX = "duet"

#: Post-heal convergence runs one in-process anti-entropy pass: usually
#: sub-millisecond on test fabrics, seconds on north-star shapes.
CHANNEL_CONVERGENCE_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
    0.5, 1.0, 2.5,
)


class ControllerInstrumentation:
    """One controller (and its successors, across crash-restarts)
    mirrored into a registry under the ``controller`` collector name."""

    def __init__(
        self,
        controller,
        registry: MetricsRegistry,
        *,
        prefix: str = DEFAULT_PREFIX,
        collector_name: str = "controller",
    ) -> None:
        self.controller = controller
        self.registry = registry
        self.prefix = prefix
        self.collector_name = collector_name
        # High-watermark state for the reset-proof cumulative counter:
        # mux key ("hmux:3" / "smux:1") -> last observed packet count.
        self._last_mux_packets: Dict[str, int] = {}
        self._retired_packets = 0

        p = prefix
        r = registry
        # Per-HMux (label: switch).
        self.hmux_packets = r.counter(
            f"{p}_hmux_packets_total",
            "Packets forwarded by each HMux", ("switch",))
        self.hmux_bytes = r.counter(
            f"{p}_hmux_bytes_total",
            "Bytes forwarded by each HMux", ("switch",))
        self.hmux_no_match = r.counter(
            f"{p}_hmux_no_match_total",
            "Packets an HMux had no entry for", ("switch",))
        self.hmux_vip_packets = r.counter(
            f"{p}_hmux_vip_packets_total",
            "Per-VIP packets forwarded by each HMux", ("switch", "vip"))
        self.hmux_vips = r.gauge(
            f"{p}_hmux_vips",
            "VIPs currently programmed on each HMux", ("switch",))
        # Per-SMux (label: smux).
        self.smux_packets = r.counter(
            f"{p}_smux_packets_total",
            "Packets forwarded by each SMux", ("smux",))
        self.smux_bytes = r.counter(
            f"{p}_smux_bytes_total",
            "Bytes forwarded by each SMux", ("smux",))
        self.smux_drops = r.counter(
            f"{p}_smux_drops_no_vip_total",
            "Packets an SMux dropped for an unknown VIP", ("smux",))
        self.smux_connections = r.counter(
            f"{p}_smux_connections_total",
            "Connections ever pinned by each SMux", ("smux",))
        self.smux_vip_packets = r.counter(
            f"{p}_smux_vip_packets_total",
            "Per-VIP packets forwarded by each SMux", ("smux", "vip"))
        self.smux_conn_count = r.gauge(
            f"{p}_smux_connection_count",
            "Live connection-table entries per SMux", ("smux",))
        # Host agents (delivery side of the conservation law).
        self.delivered_packets = r.counter(
            f"{p}_delivered_packets_total",
            "Packets delivered to DIPs of each VIP (host-agent meters)",
            ("vip",))
        self.delivered_bytes = r.counter(
            f"{p}_delivered_bytes_total",
            "Bytes delivered to DIPs of each VIP", ("vip",))
        # Fleet-level cumulative (reset-proof; see module docstring).
        self.forwarded_packets = r.counter(
            f"{p}_forwarded_packets_total",
            "Cumulative packets counted by any mux, surviving mux "
            "resets and retirements")
        # Controller state gauges.
        self.g_vips = r.gauge(f"{p}_controller_vips", "VIPs under management")
        self.g_hmux_assigned = r.gauge(
            f"{p}_controller_hmux_assigned_vips",
            "VIPs currently assigned to an HMux")
        self.g_degraded = r.gauge(
            f"{p}_controller_degraded_vips",
            "VIPs degraded to SMux-only service")
        self.g_failed_switches = r.gauge(
            f"{p}_controller_failed_switches", "Switches currently failed")
        self.g_failed_links = r.gauge(
            f"{p}_controller_failed_links",
            "Directional links currently cut")
        self.g_smuxes = r.gauge(
            f"{p}_controller_smuxes", "Live SMux instances")
        self.g_routes = r.gauge(
            f"{p}_routes", "Prefixes in the BGP route table")
        # Programming / reconcile / journal counters.
        self.prog = {
            key: r.counter(f"{p}_programming_{key}_total", help_text)
            for key, help_text in (
                ("attempts", "Switch programming RPC attempts"),
                ("retries", "Programming attempts beyond the first"),
                ("transient_faults", "Injected transient RPC faults"),
                ("degraded", "VIPs degraded to SMux-only"),
                ("skipped_dead_switch", "Plan steps that targeted a "
                                        "failed switch"),
                ("unwinds", "Partial-VIP teardowns after faults"),
            )
        }
        self.prog_backoff = r.counter(
            f"{p}_programming_backoff_seconds_total",
            "Cumulative modelled retry backoff")
        self.reconcile_rounds = r.counter(
            f"{p}_reconcile_rounds_total", "Anti-entropy rounds run")
        self.reconcile_repairs = r.counter(
            f"{p}_reconcile_repairs_total", "Anti-entropy repairs made")
        self.journal_ops = r.counter(
            f"{p}_journal_ops_total", "Ops appended to the journal")
        self.journal_snapshots = r.counter(
            f"{p}_journal_snapshots_total", "Journal snapshot checkpoints")
        self.journal_truncated = r.counter(
            f"{p}_journal_records_truncated_total",
            "Journal records dropped by snapshot truncation")
        self.journal_tail = r.gauge(
            f"{p}_journal_tail_records",
            "Op/commit records since the last snapshot")
        # Control channel + pending-ops ledger.  The channel belongs to
        # the deployment (it survives crash-restarts with the
        # dataplane), so its counters are monotone; ledger counters are
        # per-incarnation, like the programming stats.
        self.channel_counters = {
            key: r.counter(f"{p}_ctrl_channel_{key}_total", help_text)
            for key, help_text in (
                ("sends", "Commands handed to the control channel"),
                ("applied", "Channel deliveries that mutated a device"),
                ("losses", "Programming commands lost in flight"),
                ("partition_drops", "Programming commands dropped at a "
                                    "partitioned device"),
                ("delayed_dups", "Duplicate command copies queued for "
                                 "redelivery"),
                ("dup_drops", "Duplicate deliveries dropped by the "
                              "(epoch, seq) fence"),
                ("fence_rejects", "Stale-epoch deliveries dropped by "
                                  "the fence"),
                ("stale_applied", "Fencing violations: stale or "
                                  "duplicate commands that applied"),
                ("pumps", "Duplicate-redelivery sweeps"),
                ("heals", "Channel partitions or loss/delay weather "
                          "healed"),
            )
        }
        self.ledger_counters = {
            key: r.counter(
                f"{p}_ctrl_channel_ledger_{key}_total", help_text,
            )
            for key, help_text in (
                ("opened", "Programming op tickets opened"),
                ("acked", "Programming ops acknowledged"),
                ("retries", "Programming op retries issued"),
                ("timeouts", "Programming ops abandoned at the retry "
                             "deadline (VIP degraded to SMux)"),
                ("rejected", "Programming ops NACKed deterministically"),
            )
        }
        self.g_channel_pending = r.gauge(
            f"{p}_ctrl_channel_pending_ops",
            "Programming ops awaiting acknowledgement")
        self.g_channel_partitioned = r.gauge(
            f"{p}_ctrl_channel_partitioned_devices",
            "Devices currently cut off from the control channel")
        self.g_channel_queued = r.gauge(
            f"{p}_ctrl_channel_queued_dups",
            "Duplicate command copies still queued in flight")
        self.g_channel_epoch = r.gauge(
            f"{p}_ctrl_channel_epoch",
            "Current controller fencing epoch")
        self.channel_convergence = r.histogram(
            f"{p}_ctrl_channel_convergence_seconds",
            "Post-heal anti-entropy convergence latency",
            buckets=CHANNEL_CONVERGENCE_BUCKETS)

        registry.register_collector(collector_name, self._collect)

    # -- lifecycle ----------------------------------------------------------

    def rebind(self, controller) -> None:
        """Point the collector at a new controller incarnation (the
        chaos engine's crash-restart path).  Cumulative state — the
        forwarded-packets high watermarks — carries over, which is the
        whole point: telemetry history survives the crash."""
        self.controller = controller

    def close(self) -> None:
        self.registry.unregister_collector(self.collector_name)

    # -- the collector ------------------------------------------------------

    def _collect(self, registry: MetricsRegistry) -> None:
        c = self.controller
        observed: Dict[str, int] = {}

        for index in sorted(c.switch_agents):
            hmux = c.switch_agents[index].hmux
            counters = hmux.counters
            self.hmux_packets.labels(index).set_total(counters.packets)
            self.hmux_bytes.labels(index).set_total(counters.bytes)
            self.hmux_no_match.labels(index).set_total(counters.no_match)
            self.hmux_vips.labels(index).set(len(hmux.vips()))
            for vip, packets in counters.per_vip_packets.items():
                self.hmux_vip_packets.labels(
                    index, format_ip(vip)
                ).set_total(packets)
            observed[f"hmux:{index}"] = counters.packets
            # A wiped HMux (switch failure) clears per-VIP children too.
            if not counters.per_vip_packets:
                self.hmux_vip_packets.prune(
                    lambda key, i=str(index): key[0] != i
                )

        live_smuxes = set()
        for smux in c.smuxes:
            counters = smux.counters
            sid = smux.smux_id
            live_smuxes.add(str(sid))
            self.smux_packets.labels(sid).set_total(counters.packets)
            self.smux_bytes.labels(sid).set_total(counters.bytes)
            self.smux_drops.labels(sid).set_total(counters.drops_no_vip)
            self.smux_connections.labels(sid).set_total(counters.connections)
            self.smux_conn_count.labels(sid).set(smux.connection_count())
            for vip, packets in counters.per_vip_packets.items():
                self.smux_vip_packets.labels(
                    sid, format_ip(vip)
                ).set_total(packets)
            observed[f"smux:{sid}"] = counters.packets
        # SMuxes that left the fleet (fail_smux) stop being scraped.
        for instr in (
            self.smux_packets, self.smux_bytes, self.smux_drops,
            self.smux_connections, self.smux_conn_count,
            self.smux_vip_packets,
        ):
            instr.prune(lambda key: key[0] in live_smuxes)

        # Reset-proof cumulative forwarded count.
        for key, current in observed.items():
            last = self._last_mux_packets.get(key, 0)
            if current < last:
                # The mux was wiped (switch failure) — fold the lost
                # epoch into the retired pool.
                self._retired_packets += last
            self._last_mux_packets[key] = current
        for key in list(self._last_mux_packets):
            if key not in observed:
                # The mux left the fleet entirely (fail_smux).
                self._retired_packets += self._last_mux_packets.pop(key)
        self.forwarded_packets.set_total(
            self._retired_packets + sum(observed.values())
        )

        # Host-agent delivery meters, aggregated per VIP.
        delivered: Dict[int, Tuple[int, int]] = {}
        for server in sorted(c.host_agents):
            report = c.host_agents[server].traffic_report()
            for vip_addr, (packets, size) in report.items():
                prev = delivered.get(vip_addr, (0, 0))
                delivered[vip_addr] = (prev[0] + packets, prev[1] + size)
        for vip_addr in sorted(delivered):
            packets, size = delivered[vip_addr]
            label = format_ip(vip_addr)
            self.delivered_packets.labels(label).set_total(packets)
            self.delivered_bytes.labels(label).set_total(size)

        # Controller gauges.
        records = c.records()
        self.g_vips.set(len(records))
        self.g_hmux_assigned.set(sum(
            1 for r in records.values() if r.assigned_switch is not None
        ))
        self.g_degraded.set(len(c.degraded_vips))
        self.g_failed_switches.set(len(c.failed_switches))
        self.g_failed_links.set(len(c.failed_links))
        self.g_smuxes.set(len(c.smuxes))
        self.g_routes.set(len(c.route_table))

        # Programming / reconcile / journal.
        stats = c.programming_stats
        for key, counter in self.prog.items():
            counter.set_total(getattr(stats, key))
        self.prog_backoff.set_total(stats.backoff_s)
        self.reconcile_rounds.set_total(stats.reconcile_rounds)
        self.reconcile_repairs.set_total(stats.reconcile_repairs)
        journal = c.journal
        if journal is not None:
            self.journal_ops.set_total(journal.ops_appended)
            self.journal_snapshots.set_total(journal.snapshots_written)
            self.journal_truncated.set_total(journal.records_truncated)
            self.journal_tail.set(len(journal.tail()))

        # Control channel + ledger (guarded: bare controllers built
        # without the channel plumbing still instrument cleanly).
        channel = getattr(c, "channel", None)
        if channel is not None:
            channel_stats = channel.stats.as_dict()
            for key, counter in self.channel_counters.items():
                counter.set_total(channel_stats[key])
            self.g_channel_partitioned.set(len(channel.partitioned))
            self.g_channel_queued.set(channel.queued_dups())
            self.g_channel_epoch.set(channel.epoch)
            for seconds in channel.drain_convergences():
                self.channel_convergence.observe(seconds)
        ledger = getattr(c, "ledger", None)
        if ledger is not None:
            for key, counter in self.ledger_counters.items():
                counter.set_total(getattr(ledger, key))
            self.g_channel_pending.set(len(ledger.pending()))


def instrument_controller(
    controller,
    registry: MetricsRegistry,
    *,
    prefix: str = DEFAULT_PREFIX,
) -> ControllerInstrumentation:
    """Register collectors for every component a controller owns (HMuxes,
    SMuxes, host agents, programming stats, journal) and return the
    instrumentation handle (keep it: ``rebind`` re-observes a restored
    controller)."""
    return ControllerInstrumentation(controller, registry, prefix=prefix)


def instrument_hmux(
    hmux,
    registry: MetricsRegistry,
    *,
    switch: int = 0,
    prefix: str = DEFAULT_PREFIX,
    collector_name: Optional[str] = None,
) -> None:
    """Standalone HMux mirror, for benchmarks and micro-tests that have
    no controller."""
    packets = registry.counter(
        f"{prefix}_hmux_packets_total",
        "Packets forwarded by each HMux", ("switch",))
    total_bytes = registry.counter(
        f"{prefix}_hmux_bytes_total",
        "Bytes forwarded by each HMux", ("switch",))
    no_match = registry.counter(
        f"{prefix}_hmux_no_match_total",
        "Packets an HMux had no entry for", ("switch",))
    vip_packets = registry.counter(
        f"{prefix}_hmux_vip_packets_total",
        "Per-VIP packets forwarded by each HMux", ("switch", "vip"))

    def collect(_registry: MetricsRegistry) -> None:
        counters = hmux.counters
        packets.labels(switch).set_total(counters.packets)
        total_bytes.labels(switch).set_total(counters.bytes)
        no_match.labels(switch).set_total(counters.no_match)
        for vip, count in counters.per_vip_packets.items():
            vip_packets.labels(switch, format_ip(vip)).set_total(count)

    registry.register_collector(
        collector_name or f"hmux:{switch}", collect,
    )


def instrument_smux(
    smux,
    registry: MetricsRegistry,
    *,
    prefix: str = DEFAULT_PREFIX,
    collector_name: Optional[str] = None,
) -> None:
    """Standalone SMux mirror (benchmarks / micro-tests)."""
    packets = registry.counter(
        f"{prefix}_smux_packets_total",
        "Packets forwarded by each SMux", ("smux",))
    total_bytes = registry.counter(
        f"{prefix}_smux_bytes_total",
        "Bytes forwarded by each SMux", ("smux",))
    drops = registry.counter(
        f"{prefix}_smux_drops_no_vip_total",
        "Packets an SMux dropped for an unknown VIP", ("smux",))
    vip_packets = registry.counter(
        f"{prefix}_smux_vip_packets_total",
        "Per-VIP packets forwarded by each SMux", ("smux", "vip"))

    def collect(_registry: MetricsRegistry) -> None:
        counters = smux.counters
        sid = smux.smux_id
        packets.labels(sid).set_total(counters.packets)
        total_bytes.labels(sid).set_total(counters.bytes)
        drops.labels(sid).set_total(counters.drops_no_vip)
        for vip, count in counters.per_vip_packets.items():
            vip_packets.labels(sid, format_ip(vip)).set_total(count)

    registry.register_collector(
        collector_name or f"smux:{smux.smux_id}", collect,
    )


#: Epoch solves range from sub-millisecond smoke topologies to multi-
#: second scalar solves on north-star fabrics; span both.
ASSIGN_SOLVE_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0,
)


def register_assignment_metrics(
    registry: MetricsRegistry,
    *,
    prefix: str = DEFAULT_PREFIX,
    collector_name: str = "assignment",
) -> None:
    """Mirror the per-engine assignment-solver stats
    (:data:`repro.core.fastassign.ASSIGN_STATS`) into the registry.

    Same collector idiom as the dataplane counters: the solver hot path
    only bumps plain ints on its :class:`AssignStats`; this installs a
    named collector that mirrors them into typed instruments at scrape
    time.  Solve latencies buffered since the last scrape drain into the
    histogram here.
    """
    from repro.core.fastassign import ASSIGN_STATS

    p = prefix
    solve_seconds = registry.histogram(
        f"{p}_assign_solve_seconds",
        "Epoch assignment solve latency by engine", ("engine",),
        buckets=ASSIGN_SOLVE_BUCKETS)
    solves = registry.counter(
        f"{p}_assign_solves_total",
        "Epoch assignment solves by engine", ("engine",))
    evaluations = registry.counter(
        f"{p}_assign_candidate_evaluations_total",
        "Candidate switches scored during placement", ("engine",))
    rows_built = registry.counter(
        f"{p}_assign_rows_built_total",
        "Delta-matrix rows (VIP structures) built", ("engine",))
    rows_invalidated = registry.counter(
        f"{p}_assign_rows_invalidated_total",
        "Delta-matrix rows dropped by invalidation or cache pressure",
        ("engine",))
    fallbacks = registry.counter(
        f"{p}_assign_engine_fallbacks_total",
        "Solves that fell back to the scalar engine", ("engine",))

    def collect(_registry: MetricsRegistry) -> None:
        for name, stats in ASSIGN_STATS.items():
            solves.labels(name).set_total(stats.solves)
            evaluations.labels(name).set_total(stats.candidate_evaluations)
            rows_built.labels(name).set_total(stats.rows_built)
            rows_invalidated.labels(name).set_total(stats.rows_invalidated)
            fallbacks.labels(name).set_total(stats.fallbacks)
            for seconds in stats.drain_pending_solves():
                solve_seconds.labels(name).observe(seconds)

    registry.register_collector(collector_name, collect)


def conservation_violations(
    registry: MetricsRegistry, *, prefix: str = DEFAULT_PREFIX,
) -> List[str]:
    """Check the conservation laws over *already scraped* registry state
    (callers run ``registry.collect()`` / ``scrape()`` first so the
    observation is consistent).  Returns human-readable violations."""
    out: List[str] = []
    for plane, label in (("hmux", "switch"), ("smux", "smux")):
        totals = registry.get(f"{prefix}_{plane}_packets_total")
        per_vip = registry.get(f"{prefix}_{plane}_vip_packets_total")
        if totals is None or per_vip is None:
            continue
        attributed: Dict[str, float] = {}
        for values, child in per_vip.items():
            attributed[values[0]] = attributed.get(values[0], 0.0) + child.value
        for values, child in totals.items():
            mux = values[0]
            total = child.value
            vip_sum = attributed.pop(mux, 0.0)
            if total != vip_sum:
                out.append(
                    f"{plane} {label}={mux}: packets_total {total:g} != "
                    f"sum of per-VIP packets {vip_sum:g}"
                )
        for mux, vip_sum in sorted(attributed.items()):
            out.append(
                f"{plane} {label}={mux}: per-VIP packets {vip_sum:g} "
                "attributed to a mux with no packets_total sample"
            )

    forwarded = registry.get(f"{prefix}_forwarded_packets_total")
    delivered = registry.get(f"{prefix}_delivered_packets_total")
    if forwarded is not None and delivered is not None:
        forwarded_total = forwarded.total()
        delivered_total = delivered.total()
        if delivered_total > forwarded_total:
            out.append(
                f"fleet: delivered packets {delivered_total:g} exceed "
                f"cumulative forwarded packets {forwarded_total:g}"
            )
    return out
