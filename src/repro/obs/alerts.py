"""Multi-window multi-burn-rate alerting over recorded SLO series.

The evaluator implements the Google SRE workbook's alerting strategy:
each severity pairs a **long** window (enough events to be statistically
meaningful) with a **short** window (so the alert clears quickly once
the burn stops), and the alert condition requires *both* windows'
burn rates above the pair's threshold.  A fast/page pair catches
cliff-edge burn (a silently dead switch blackholing its VIPs) within a
few probe rounds; a slow/ticket pair catches sustained moderate burn
that would quietly exhaust the budget.

Windows are sized in *simulated* seconds: the chaos engine ticks its
recorder on the health monitor's :class:`~repro.health.probes.SimClock`
(3 ms probe periods, the paper's testbed cadence), so the defaults are
expressed as round counts times the probe period.

Each (SLO, severity) pair runs a small FSM with hysteresis::

    inactive -> pending -> firing -> (resolved) inactive

``for_rounds`` consecutive breaching evaluations are required before
firing (one unlucky window never pages) and ``clear_rounds`` consecutive
clean ones before resolving (no flapping at probe frequency).  Every
fired episode becomes an :class:`AlertIncident`, the unit the incident
forensics engine and the :class:`~repro.obs.incident.AlertScorecard`
consume.

Evaluation is deterministic — pure arithmetic over recorder ring
buffers on the sim clock — so a replayed chaos run fires bit-identical
alerts at bit-identical times.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.registry import MetricsRegistry, Recorder, RingBuffer
from repro.obs.slo import (
    CompiledSlo,
    SeriesSelector,
    SloError,
    budget_from_counts,
)

#: Paper testbed probe cadence (seconds) — the unit the default windows
#: are sized in.
DEFAULT_PROBE_PERIOD_S = 0.003

SEVERITY_PAGE = "page"
SEVERITY_TICKET = "ticket"


@dataclass(frozen=True)
class BurnWindow:
    """One (long, short, threshold) burn-rate condition."""

    long_s: float
    short_s: float
    burn_threshold: float
    severity: str

    def to_dict(self) -> Dict[str, object]:
        return {
            "long_s": self.long_s,
            "short_s": self.short_s,
            "burn_threshold": self.burn_threshold,
            "severity": self.severity,
        }


@dataclass(frozen=True)
class AlertPolicy:
    """Burn-rate windows plus FSM hysteresis for one SLO."""

    slo: str
    windows: Tuple[BurnWindow, ...]
    #: Consecutive breaching evaluations before pending becomes firing.
    for_rounds: int = 2
    #: Consecutive clean evaluations before firing resolves.
    clear_rounds: int = 4


def build_default_policies(
    probe_period_s: float = DEFAULT_PROBE_PERIOD_S,
    overrides: Optional[Dict[str, object]] = None,
) -> List[AlertPolicy]:
    """Default policies for the default SLO set, windows in rounds of
    the probe period.  ``overrides`` tweaks the availability pair —
    keys ``fast_burn_threshold`` / ``slow_burn_threshold`` /
    ``for_rounds`` / ``clear_rounds`` (all JSON-scalar, so a
    :class:`~repro.chaos.engine.ChaosConfig` can carry them)."""
    ov = dict(overrides or {})
    p = probe_period_s
    fast_thresh = float(ov.get("fast_burn_threshold", 4.0))
    slow_thresh = float(ov.get("slow_burn_threshold", 3.0))
    for_rounds = int(ov.get("for_rounds", 2))
    clear_rounds = int(ov.get("clear_rounds", 4))
    availability = AlertPolicy(
        slo="vip-availability",
        windows=(
            # 6-round long / 2-round short: a blackholed switch pushes
            # both far past the threshold within the detection budget.
            BurnWindow(6 * p, 2 * p, fast_thresh, SEVERITY_PAGE),
            # 20-round long / 4-round short: sustained moderate burn.
            BurnWindow(20 * p, 4 * p, slow_thresh, SEVERITY_TICKET),
        ),
        for_rounds=for_rounds,
        clear_rounds=clear_rounds,
    )
    latency = AlertPolicy(
        slo="delivery-latency-p99",
        windows=(
            BurnWindow(20 * p, 4 * p, 4.0, SEVERITY_TICKET),
        ),
        for_rounds=for_rounds,
        clear_rounds=clear_rounds,
    )
    convergence = AlertPolicy(
        slo="post-heal-convergence",
        # Convergence passes are rare events; a long window spanning the
        # soak plus a shortish confirmation window.
        windows=(
            BurnWindow(200 * p, 20 * p, 4.0, SEVERITY_TICKET),
        ),
        for_rounds=for_rounds,
        clear_rounds=clear_rounds,
    )
    detection = AlertPolicy(
        slo="detection-latency",
        windows=(
            BurnWindow(60 * p, 10 * p, 4.0, SEVERITY_TICKET),
        ),
        for_rounds=for_rounds,
        clear_rounds=clear_rounds,
    )
    return [availability, latency, convergence, detection]


STATE_INACTIVE = "inactive"
STATE_PENDING = "pending"
STATE_FIRING = "firing"
STATE_RESOLVED = "resolved"


@dataclass
class AlertIncident:
    """One fired episode of an (SLO, severity) alert."""

    slo: str
    severity: str
    window: BurnWindow
    pending_t: float
    fire_t: float
    resolve_t: Optional[float] = None
    peak_long_burn: float = 0.0
    peak_short_burn: float = 0.0

    @property
    def open(self) -> bool:
        return self.resolve_t is None

    def to_dict(self) -> Dict[str, object]:
        return {
            "slo": self.slo,
            "severity": self.severity,
            "window": self.window.to_dict(),
            "pending_t": self.pending_t,
            "fire_t": self.fire_t,
            "resolve_t": self.resolve_t,
            "peak_long_burn": self.peak_long_burn,
            "peak_short_burn": self.peak_short_burn,
        }


#: Keep at most this many cumulative points per series; pruning keeps
#: the newest half, which must still span the longest alert window.
_CUM_MAX = 4096


class _CumSeries:
    """Reset-adjusted cumulative view of one ring-buffer series.

    ``cums[i]`` is the counter's total reset-aware increase from the
    first ingested point up to ``times[i]``, so any trailing-window
    increase is a difference of two bisected entries — O(log n) per
    query instead of an O(window) rescan per alert track per round.
    """

    __slots__ = ("seen", "last_raw", "cum", "times", "cums")

    def __init__(self) -> None:
        self.seen = 0
        self.last_raw: Optional[float] = None
        self.cum = 0.0
        self.times: List[float] = []
        self.cums: List[float] = []

    def ingest(self, buf: RingBuffer) -> None:
        new = buf.appended - self.seen
        if new <= 0:
            return
        for t, value in buf.tail(new):
            if self.last_raw is not None:
                delta = value - self.last_raw
                # Counter reset: the post-reset value is all increase.
                self.cum += value if delta < 0 else delta
            self.last_raw = value
            self.times.append(t)
            self.cums.append(self.cum)
        self.seen = buf.appended
        if len(self.times) > _CUM_MAX:
            del self.times[: -_CUM_MAX // 2]
            del self.cums[: -_CUM_MAX // 2]

    def increase(
        self,
        start_t: Optional[float],
        end_t: float,
        inclusive_base: bool,
    ) -> float:
        """Increase over ``(start_t, end_t]``.  The baseline is the last
        point before ``start_t`` (at-or-before when ``inclusive_base``,
        matching "since last evaluation" semantics); without one, the
        oldest retained point — the same truncation behaviour as the
        ring buffer itself."""
        times = self.times
        if not times:
            return 0.0
        idx_end = bisect_right(times, end_t) - 1
        if idx_end < 0:
            return 0.0
        base_cum = self.cums[0]
        if start_t is not None:
            bisect_fn = bisect_right if inclusive_base else bisect_left
            idx_base = bisect_fn(times, start_t) - 1
            if idx_base >= 0:
                base_cum = self.cums[idx_base]
        return max(0.0, self.cums[idx_end] - base_cum)


class _AlertTrack:
    """FSM state for one (SLO, BurnWindow) pair."""

    __slots__ = (
        "policy", "window", "state", "breach_streak", "clear_streak",
        "pending_t", "incident",
    )

    def __init__(self, policy: AlertPolicy, window: BurnWindow) -> None:
        self.policy = policy
        self.window = window
        self.state = STATE_INACTIVE
        self.breach_streak = 0
        self.clear_streak = 0
        self.pending_t: Optional[float] = None
        self.incident: Optional[AlertIncident] = None


class AlertEvaluator:
    """Evaluates every policy once per call against the recorder.

    Exposes the ``duet_slo_*`` metric family when given a registry:
    per-SLO budget-remaining and burn-rate gauges, per-severity
    alerts-fired counters and active-alert gauges, and an evaluation
    counter.  Gauges are set directly at the end of each evaluation
    (no registered collector — the health monitor collects on its hot
    path, so scrape-time mirroring would re-run per probe round); a
    scrape between evaluations reads the last evaluated values.
    """

    def __init__(
        self,
        slos: Sequence[CompiledSlo],
        recorder: Recorder,
        policies: Optional[Sequence[AlertPolicy]] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.slos: Dict[str, CompiledSlo] = {s.name: s for s in slos}
        self.recorder = recorder
        self.policies = list(
            policies if policies is not None else build_default_policies()
        )
        for policy in self.policies:
            if policy.slo not in self.slos:
                raise SloError(
                    f"alert policy references unknown SLO {policy.slo!r}"
                )
            if policy.for_rounds < 1 or policy.clear_rounds < 1:
                raise SloError(
                    f"policy {policy.slo!r}: for_rounds and clear_rounds "
                    "must be >= 1"
                )
            for window in policy.windows:
                if window.short_s > window.long_s:
                    raise SloError(
                        f"policy {policy.slo!r}: short window "
                        f"{window.short_s}s exceeds long {window.long_s}s"
                    )
        self._tracks: List[_AlertTrack] = [
            _AlertTrack(policy, window)
            for policy in self.policies
            for window in policy.windows
        ]
        self.incidents: List[AlertIncident] = []
        self.evaluations = 0
        # Selector -> ring buffers, resolved incrementally: series are
        # only ever added to the recorder (insertion-ordered), so each
        # refresh matches just the keys that appeared since last time.
        self._selectors: List[SeriesSelector] = []
        for slo in self.slos.values():
            for sel in slo.good + slo.total:
                if sel not in self._selectors:
                    self._selectors.append(sel)
        self._resolved: Dict[SeriesSelector, List[RingBuffer]] = {
            sel: [] for sel in self._selectors
        }
        self._scanned = 0
        self._resolved_at = -1
        # Incremental cumulative sums per watched series (keyed by
        # buffer identity — buffers live as long as the recorder).
        self._cums: Dict[int, _CumSeries] = {}
        self._watched: List[RingBuffer] = []
        self._watched_ids = set()
        # Burn rates cached during evaluate(), mirrored to the gauges.
        self._burn_cache: Dict[Tuple[str, str], float] = {}
        # Whole-run error-budget counters, refreshed each evaluation
        # from the cumulative sums (which span the entire run even
        # after the recorder's ring buffers truncate).
        self._budget_good: Dict[str, float] = {n: 0.0 for n in self.slos}
        self._budget_total: Dict[str, float] = {n: 0.0 for n in self.slos}
        self._last_eval_t: Optional[float] = None
        self._instruments = None
        if registry is not None:
            self._instruments = {
                "budget": registry.gauge(
                    "duet_slo_budget_remaining_ratio",
                    "Error budget left over the recorded window "
                    "(1 = untouched, <0 = overspent).",
                    ("slo",),
                ),
                "burn": registry.gauge(
                    "duet_slo_burn_rate",
                    "Burn rate per alert window at the last evaluation.",
                    ("slo", "window"),
                ),
                "fired": registry.counter(
                    "duet_slo_alerts_fired_total",
                    "Alert episodes fired.",
                    ("slo", "severity"),
                ),
                "active": registry.gauge(
                    "duet_slo_alerts_active",
                    "Currently firing alerts.",
                    ("slo", "severity"),
                ),
                "evals": registry.counter(
                    "duet_slo_evaluations_total",
                    "Alert evaluation rounds.",
                ),
            }
            # Pre-bind gauge children: labels() is a dict lookup per
            # call and the mirror runs every probe round.
            inst = self._instruments
            self._budget_gauges = {
                name: inst["budget"].labels(name) for name in self.slos
            }
            self._burn_gauges = {}
            self._active_gauges = []
            for track in self._tracks:
                slo_name = track.policy.slo
                severity = track.window.severity
                for side in ("long", "short"):
                    key = (slo_name, f"{severity}-{side}")
                    self._burn_gauges[key] = inst["burn"].labels(*key)
                self._active_gauges.append(
                    (track, inst["active"].labels(slo_name, severity))
                )

    # -- series resolution --------------------------------------------------

    def instrument_names(self) -> List[str]:
        """Base instrument names the SLO set reads — the whitelist for
        cheap per-round partial recorder ticks."""
        names: List[str] = []
        for slo in self.slos.values():
            for name in slo.instrument_names():
                if name not in names:
                    names.append(name)
        return names

    def _refresh(self) -> None:
        """Match series keys that appeared since the last refresh
        against every selector — O(new keys), not O(all keys)."""
        if self.recorder.n_series == self._resolved_at:
            return
        keys = self.recorder.series_keys()
        for key in keys[self._scanned:]:
            buf = None
            for selector in self._selectors:
                if selector.matches(key):
                    if buf is None:
                        buf = self.recorder.buffer(key)
                    self._resolved[selector].append(buf)
            if buf is not None and id(buf) not in self._watched_ids:
                self._watched_ids.add(id(buf))
                self._watched.append(buf)
        self._scanned = len(keys)
        self._resolved_at = self.recorder.n_series

    def _lookup(self, selector: SeriesSelector):
        self._refresh()
        buffers = self._resolved.get(selector)
        if buffers is None:
            # Ad-hoc selector from an external caller: full scan once,
            # then keep it refreshed incrementally like the rest.
            buffers = []
            for key in self.recorder.series_keys():
                if selector.matches(key):
                    buf = self.recorder.buffer(key)
                    buffers.append(buf)
                    if id(buf) not in self._watched_ids:
                        self._watched_ids.add(id(buf))
                        self._watched.append(buf)
            self._resolved[selector] = buffers
            self._selectors.append(selector)
        return buffers

    def _ingest(self) -> None:
        """Pull new points from every watched series into the
        cumulative-sum caches — O(new points) per round."""
        self._refresh()
        cums = self._cums
        for buf in self._watched:
            state = cums.get(id(buf))
            if state is None:
                state = cums[id(buf)] = _CumSeries()
            state.ingest(buf)

    def _sum(
        self,
        selectors,
        start_t: Optional[float],
        end_t: float,
        inclusive_base: bool,
    ) -> float:
        total = 0.0
        cums = self._cums
        resolved = self._resolved
        for selector in selectors:
            # _ingest refreshed resolution at the top of evaluate();
            # only a selector never seen before needs the slow path.
            buffers = resolved.get(selector)
            if buffers is None:
                buffers = self._lookup(selector)
            for buf in buffers:
                state = cums.get(id(buf))
                if state is None:
                    state = cums[id(buf)] = _CumSeries()
                    state.ingest(buf)
                total += state.increase(start_t, end_t, inclusive_base)
        return total

    def _burn(
        self, slo: CompiledSlo, window_s: float, now: float,
    ) -> Optional[float]:
        """Trailing-window burn rate from the cumulative caches —
        numerically identical to :meth:`CompiledSlo.burn_rate` but two
        bisects per series instead of an O(window) rescan."""
        start_t = now - window_s
        total = self._sum(slo.total, start_t, now, False)
        if total <= 0:
            return None
        good = self._sum(slo.good, start_t, now, False)
        rate = min(1.0, max(0.0, 1.0 - good / total))
        return rate / (1.0 - slo.objective)

    # -- metrics mirror ------------------------------------------------------

    def _increase_since(
        self,
        selectors,
        after_t: Optional[float],
        now: float,
    ) -> float:
        """Reset-aware increase over points *after* ``after_t`` (the
        last point at or before it is the baseline)."""
        return self._sum(selectors, after_t, now, True)

    def _cum_total(self, selectors) -> float:
        """Whole-run reset-aware increase: the final cumulative value of
        every matched series — O(series), no window scan."""
        total = 0.0
        cums = self._cums
        resolved = self._resolved
        for selector in selectors:
            buffers = resolved.get(selector)
            if buffers is None:
                buffers = self._lookup(selector)
            for buf in buffers:
                state = cums.get(id(buf))
                if state is not None:
                    total += state.cum
        return total

    def _mirror(self) -> None:
        """Refresh the ``duet_slo_*`` gauges from this evaluation."""
        for name, gauge in self._budget_gauges.items():
            gauge.set(
                budget_from_counts(
                    self._budget_good[name],
                    self._budget_total[name],
                    self.slos[name].objective,
                )["budget_remaining"]
            )
        for key, burn in self._burn_cache.items():
            self._burn_gauges[key].set(burn)
        for track, gauge in self._active_gauges:
            gauge.set(1.0 if track.state == STATE_FIRING else 0.0)

    # -- evaluation ----------------------------------------------------------

    def _evaluate_track(
        self, track: _AlertTrack, now: float,
    ) -> Optional[AlertIncident]:
        slo = self.slos[track.policy.slo]
        window = track.window
        long_burn = self._burn(slo, window.long_s, now)
        short_burn = self._burn(slo, window.short_s, now)
        self._burn_cache[(slo.name, f"{window.severity}-long")] = (
            long_burn if long_burn is not None else 0.0
        )
        self._burn_cache[(slo.name, f"{window.severity}-short")] = (
            short_burn if short_burn is not None else 0.0
        )
        breaching = (
            long_burn is not None
            and short_burn is not None
            and long_burn > window.burn_threshold
            and short_burn > window.burn_threshold
        )

        fired: Optional[AlertIncident] = None
        if track.state == STATE_INACTIVE:
            if breaching:
                track.state = STATE_PENDING
                track.pending_t = now
                track.breach_streak = 1
                if track.breach_streak >= track.policy.for_rounds:
                    fired = self._fire(track, now, long_burn, short_burn)
        elif track.state == STATE_PENDING:
            if breaching:
                track.breach_streak += 1
                if track.breach_streak >= track.policy.for_rounds:
                    fired = self._fire(track, now, long_burn, short_burn)
            else:
                track.state = STATE_INACTIVE
                track.breach_streak = 0
                track.pending_t = None
        elif track.state == STATE_FIRING:
            incident = track.incident
            if breaching:
                track.clear_streak = 0
                incident.peak_long_burn = max(
                    incident.peak_long_burn, long_burn
                )
                incident.peak_short_burn = max(
                    incident.peak_short_burn, short_burn
                )
            else:
                track.clear_streak += 1
                if track.clear_streak >= track.policy.clear_rounds:
                    incident.resolve_t = now
                    track.state = STATE_INACTIVE
                    track.incident = None
                    track.breach_streak = 0
                    track.clear_streak = 0
                    track.pending_t = None
        return fired

    def _fire(
        self,
        track: _AlertTrack,
        now: float,
        long_burn: float,
        short_burn: float,
    ) -> AlertIncident:
        incident = AlertIncident(
            slo=track.policy.slo,
            severity=track.window.severity,
            window=track.window,
            pending_t=track.pending_t if track.pending_t is not None else now,
            fire_t=now,
            peak_long_burn=long_burn,
            peak_short_burn=short_burn,
        )
        track.state = STATE_FIRING
        track.incident = incident
        track.clear_streak = 0
        self.incidents.append(incident)
        if self._instruments is not None:
            self._instruments["fired"].labels(
                incident.slo, incident.severity
            ).inc()
        return incident

    def evaluate(self, now: float) -> List[AlertIncident]:
        """One evaluation round at simulated time ``now``; returns the
        incidents that fired *this* round (for incident forensics)."""
        self.evaluations += 1
        if self._instruments is not None:
            self._instruments["evals"].inc()
        self._ingest()
        fired: List[AlertIncident] = []
        for track in self._tracks:
            incident = self._evaluate_track(track, now)
            if incident is not None:
                fired.append(incident)
        for name, slo in self.slos.items():
            self._budget_good[name] = self._cum_total(slo.good)
            self._budget_total[name] = self._cum_total(slo.total)
        self._last_eval_t = now
        if self._instruments is not None:
            self._mirror()
        return fired

    # -- reporting ----------------------------------------------------------

    def active_alerts(self) -> List[AlertIncident]:
        return [i for i in self.incidents if i.open]

    def budgets(self) -> Dict[str, Dict[str, float]]:
        """Whole-run error-budget accounting per SLO, from the counters
        accumulated across every evaluation round."""
        self._refresh()
        return {
            name: budget_from_counts(
                self._budget_good[name],
                self._budget_total[name],
                slo.objective,
            )
            for name, slo in self.slos.items()
        }
