"""Declarative SLOs compiled against recorded metric series.

An :class:`SloSpec` states an objective ("99.8% of end-to-end VIP
probes are delivered") in terms of *metric names*, not code: a ratio
SLO names counter series for its good and total events, a latency SLO
names a histogram plus a threshold.  :func:`compile_slo` validates the
spec against a live :class:`~repro.obs.registry.MetricsRegistry` —
the metric must exist, have the right kind, and (for latency SLOs) a
bucket boundary at or below the threshold — and returns a
:class:`CompiledSlo` that evaluates over
:class:`~repro.obs.registry.Recorder` ring-buffer series.

Both SLO forms reduce to the same shape, a (good, total) pair of
series selectors: a latency SLO's good events are the cumulative
``_bucket`` series at the largest bound <= threshold and its total is
the ``_count`` series, which is exactly how Prometheus recording rules
express latency SLOs.

Rates are **counter-reset aware**: an increase over a window is the
sum of positive increments, and a decrease (a crash-restarted
component, a wiped switch) is treated as a reset — the post-reset
value is the new incarnation's contribution.  ``last - first`` would
report a huge negative delta instead.

Error-budget accounting follows the standard SRE model: over the
recorder's retained window, the budget is ``(1 - objective) * total``
events; ``budget_remaining`` is the fraction of it not yet consumed
(negative once the SLO is out of budget).  Burn rate is
``error_rate / (1 - objective)`` — 1.0 means the budget is consumed
exactly at the rate that exhausts it at the end of the SLO window.

Everything here is deterministic: same recorder contents, same
numbers, bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.registry import (
    Histogram,
    MetricsRegistry,
    Recorder,
    RingBuffer,
    _format_bound,
)

Points = Sequence[Tuple[float, float]]


class SloError(Exception):
    """Invalid SLO definition, or one that doesn't compile against the
    registry it was given."""


# -- reset-aware rate primitives -------------------------------------------


def reset_aware_increase(points: Points) -> float:
    """Total increase over a counter series, treating any decrease as a
    counter reset (Prometheus ``increase`` semantics): the post-reset
    sample's value counts in full as the new incarnation's increments.

    >>> reset_aware_increase([(0, 0), (1, 100), (2, 0), (3, 5)])
    105.0
    """
    inc = 0.0
    prev: Optional[float] = None
    for _, value in points:
        if prev is not None:
            delta = value - prev
            inc += delta if delta >= 0 else value
        prev = value
    return inc


def window_points(points: Points, start_t: float,
                  end_t: Optional[float] = None) -> List[Tuple[float, float]]:
    """The points inside ``[start_t, end_t]`` plus the last point before
    ``start_t`` as the rate baseline (so the first in-window increment
    is counted).  ``points`` must be time-ordered, as recorder buffers
    are."""
    out: List[Tuple[float, float]] = []
    baseline: Optional[Tuple[float, float]] = None
    for point in points:
        t = point[0]
        if t < start_t:
            baseline = point
            continue
        if end_t is not None and t > end_t:
            break
        out.append(point)
    if baseline is not None:
        out.insert(0, baseline)
    return out


def window_increase(points: Points, start_t: Optional[float] = None,
                    end_t: Optional[float] = None) -> float:
    """Reset-aware increase over ``[start_t, end_t]`` (the whole series
    when ``start_t`` is None)."""
    if start_t is not None:
        points = window_points(points, start_t, end_t)
    return reset_aware_increase(points)


# -- selectors --------------------------------------------------------------


@dataclass(frozen=True)
class SeriesSelector:
    """Matches recorded series by sample name plus a label subset
    (``labels=()`` matches every child of the family)."""

    name: str
    labels: Tuple[Tuple[str, str], ...] = ()

    def matches(self, key: Tuple[str, Tuple[Tuple[str, str], ...]]) -> bool:
        sample_name, sample_labels = key
        if sample_name != self.name:
            return False
        have = dict(sample_labels)
        return all(have.get(k) == v for k, v in self.labels)

    def render(self) -> str:
        if not self.labels:
            return self.name
        inner = ",".join(f'{k}="{v}"' for k, v in self.labels)
        return f"{self.name}{{{inner}}}"


# -- specs ------------------------------------------------------------------


@dataclass(frozen=True)
class SloSpec:
    """One declarative objective.  Exactly one form must be used:

    * **ratio** — ``good`` and ``total`` selector tuples over counter
      families (good must be a subset of total for the math to mean
      anything; that is the author's contract, not checked).
    * **latency** — ``histogram`` + ``threshold_s``; compiled to the
      cumulative bucket at the largest bound <= threshold over
      ``_count``.
    """

    name: str
    description: str
    objective: float
    good: Tuple[SeriesSelector, ...] = ()
    total: Tuple[SeriesSelector, ...] = ()
    histogram: Optional[str] = None
    threshold_s: Optional[float] = None

    @property
    def is_latency(self) -> bool:
        return self.histogram is not None


@dataclass
class CompiledSlo:
    """An :class:`SloSpec` resolved against a registry: selectors are
    known to exist with the right instrument kinds, and a latency
    threshold is snapped to its effective bucket boundary."""

    spec: SloSpec
    good: Tuple[SeriesSelector, ...]
    total: Tuple[SeriesSelector, ...]
    #: For latency SLOs: the bucket bound actually enforcing the
    #: threshold (largest bound <= ``spec.threshold_s``).
    effective_threshold_s: Optional[float] = None

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def objective(self) -> float:
        return self.spec.objective

    def instrument_names(self) -> List[str]:
        """Base instrument names this SLO reads (for partial scrapes)."""
        if self.spec.is_latency:
            return [self.spec.histogram]
        seen: List[str] = []
        for sel in self.good + self.total:
            if sel.name not in seen:
                seen.append(sel.name)
        return seen

    # -- evaluation ---------------------------------------------------------

    def _sum_increase(
        self,
        lookup,
        selectors: Tuple[SeriesSelector, ...],
        start_t: Optional[float],
        end_t: Optional[float],
    ) -> float:
        total = 0.0
        for selector in selectors:
            for series in lookup(selector):
                # Ring buffers expose an O(window) backward scan; plain
                # point sequences (tests, ad-hoc lookups) take the
                # generic path.
                if isinstance(series, RingBuffer):
                    total += reset_aware_increase(
                        series.tail_window(start_t, end_t)
                    )
                else:
                    total += window_increase(series, start_t, end_t)
        return total

    def good_total(
        self,
        lookup,
        start_t: Optional[float] = None,
        end_t: Optional[float] = None,
    ) -> Tuple[float, float]:
        """(good, total) event increases over the window.  ``lookup``
        maps a selector to an iterable of point lists — see
        :func:`recorder_lookup`."""
        good = self._sum_increase(lookup, self.good, start_t, end_t)
        total = self._sum_increase(lookup, self.total, start_t, end_t)
        return good, total

    def error_rate(
        self,
        lookup,
        start_t: Optional[float] = None,
        end_t: Optional[float] = None,
    ) -> Optional[float]:
        """Bad fraction over the window, or None when there were no
        events (no data is not the same as no errors)."""
        good, total = self.good_total(lookup, start_t, end_t)
        if total <= 0:
            return None
        return min(1.0, max(0.0, 1.0 - good / total))

    def burn_rate(
        self,
        lookup,
        window_s: float,
        now: float,
    ) -> Optional[float]:
        """How fast the error budget burns over the trailing window:
        1.0 = exactly at budget, >1 = overspending.  None without data."""
        rate = self.error_rate(lookup, now - window_s, now)
        if rate is None:
            return None
        return rate / (1.0 - self.objective)

    def budget(self, lookup) -> Dict[str, float]:
        """Error-budget accounting over the full recorded window."""
        good, total = self.good_total(lookup)
        return budget_from_counts(good, total, self.objective)


def budget_from_counts(
    good: float, total: float, objective: float,
) -> Dict[str, float]:
    """Standard SRE error-budget arithmetic from (good, total) counts:
    the budget is ``(1 - objective) * total`` bad events, and
    ``budget_remaining`` is the unspent fraction (negative once the
    objective is blown; 1.0 with no data)."""
    bad = max(0.0, total - good)
    allowed = (1.0 - objective) * total
    if total <= 0:
        remaining = 1.0
    elif allowed <= 0:  # pragma: no cover - objective < 1 enforced
        remaining = 0.0 if bad == 0 else -1.0
    else:
        remaining = 1.0 - bad / allowed
    return {
        "good": good,
        "total": total,
        "bad": bad,
        "objective": objective,
        "allowed_bad": allowed,
        "budget_remaining": remaining,
    }


def recorder_lookup(recorder: Recorder):
    """An uncached selector -> series lookup over a recorder (yields
    ring buffers).  The alert evaluator keeps its own cached
    resolution; this one is for one-shot uses (CLI, tests)."""
    def lookup(selector: SeriesSelector):
        for key in recorder.series_keys():
            if selector.matches(key):
                buf = recorder.buffer(key)
                if buf is not None:
                    yield buf
    return lookup


# -- compilation ------------------------------------------------------------


def _check_counter_family(registry: MetricsRegistry, spec_name: str,
                          selector: SeriesSelector) -> None:
    name = selector.name
    instrument = registry.get(name)
    if instrument is None:
        # Histogram child series (name_bucket / name_count / name_sum)
        # are counter-like and legal in ratio selectors too.
        for suffix in ("_bucket", "_count", "_sum"):
            if name.endswith(suffix):
                base = registry.get(name[: -len(suffix)])
                if base is not None and base.kind == "histogram":
                    return
        raise SloError(
            f"SLO {spec_name!r}: metric {name!r} is not registered"
        )
    if instrument.kind != "counter":
        raise SloError(
            f"SLO {spec_name!r}: {name!r} is a {instrument.kind}, "
            "ratio SLOs need counters"
        )
    known = set(instrument.label_names) | {"le"}
    for key, _ in selector.labels:
        if key not in known:
            raise SloError(
                f"SLO {spec_name!r}: {name!r} has no label {key!r} "
                f"(labels: {instrument.label_names})"
            )


def compile_slo(spec: SloSpec, registry: MetricsRegistry) -> CompiledSlo:
    """Validate ``spec`` against the registry and resolve it to good /
    total selectors.  Raises :class:`SloError` on any mismatch — a
    typo'd metric name fails at compile time, not silently at runtime."""
    if not 0.0 < spec.objective < 1.0:
        raise SloError(
            f"SLO {spec.name!r}: objective must be in (0, 1), "
            f"got {spec.objective}"
        )
    if spec.is_latency:
        if spec.good or spec.total:
            raise SloError(
                f"SLO {spec.name!r}: latency SLOs take histogram + "
                "threshold_s, not good/total selectors"
            )
        if spec.threshold_s is None or spec.threshold_s <= 0:
            raise SloError(
                f"SLO {spec.name!r}: latency SLOs need threshold_s > 0"
            )
        instrument = registry.get(spec.histogram)
        if instrument is None:
            raise SloError(
                f"SLO {spec.name!r}: histogram {spec.histogram!r} is "
                "not registered"
            )
        if not isinstance(instrument, Histogram):
            raise SloError(
                f"SLO {spec.name!r}: {spec.histogram!r} is a "
                f"{instrument.kind}, not a histogram"
            )
        eligible = [b for b in instrument.buckets if b <= spec.threshold_s]
        if not eligible:
            raise SloError(
                f"SLO {spec.name!r}: no bucket of {spec.histogram!r} at "
                f"or below threshold {spec.threshold_s}s (buckets: "
                f"{instrument.buckets})"
            )
        bound = eligible[-1]
        return CompiledSlo(
            spec=spec,
            good=(SeriesSelector(
                f"{spec.histogram}_bucket", (("le", _format_bound(bound)),),
            ),),
            total=(SeriesSelector(f"{spec.histogram}_count"),),
            effective_threshold_s=bound,
        )
    if not spec.good or not spec.total:
        raise SloError(
            f"SLO {spec.name!r}: ratio SLOs need good and total selectors"
        )
    for selector in spec.good + spec.total:
        _check_counter_family(registry, spec.name, selector)
    return CompiledSlo(spec=spec, good=spec.good, total=spec.total)


# -- the default Duet SLO set ----------------------------------------------

#: End-to-end VIP probe delivery through the *fabric* (mux layer).
#: Post-mux drops are a DIP's failure — the mux forwarded the packet —
#: so they count as good here; Ananta-style DIP health handles them.
AVAILABILITY_OBJECTIVE = 0.98

#: Delivered-probe RTT: HMux serves at ~150us and SMux at ~600us
#: (+-10% jitter), so 750us covers both healthy paths with headroom.
DELIVERY_LATENCY_THRESHOLD_S = 0.00075
DELIVERY_LATENCY_OBJECTIVE = 0.99

#: Post-heal anti-entropy convergence (wall-clock measurement — see
#: docs/OBSERVABILITY.md on determinism).
CONVERGENCE_THRESHOLD_S = 0.25
CONVERGENCE_OBJECTIVE = 0.95

DETECTION_LATENCY_OBJECTIVE = 0.90

_OUTCOMES = "duet_health_vip_probe_outcomes_total"


def default_slo_specs(
    detection_budget_s: float = 0.09,
) -> List[SloSpec]:
    """The four paper-derived objectives (S5-S7: availability through
    failure and migration, delivery latency, recovery speed)."""
    return [
        SloSpec(
            name="vip-availability",
            description=(
                "End-to-end VIP probes delivered by the mux fabric "
                "(post-mux DIP loss excluded)"
            ),
            objective=AVAILABILITY_OBJECTIVE,
            good=(
                SeriesSelector(_OUTCOMES, (("result", "ok"),)),
                SeriesSelector(_OUTCOMES, (("result", "post-mux-drop"),)),
            ),
            total=(SeriesSelector(_OUTCOMES),),
        ),
        SloSpec(
            name="delivery-latency-p99",
            description="Delivered VIP probe RTT within the hybrid-path bound",
            objective=DELIVERY_LATENCY_OBJECTIVE,
            histogram="duet_health_vip_rtt_seconds",
            threshold_s=DELIVERY_LATENCY_THRESHOLD_S,
        ),
        SloSpec(
            name="post-heal-convergence",
            description="Anti-entropy convergence time after a channel heal",
            objective=CONVERGENCE_OBJECTIVE,
            histogram="duet_ctrl_channel_convergence_seconds",
            threshold_s=CONVERGENCE_THRESHOLD_S,
        ),
        SloSpec(
            name="detection-latency",
            description="Silent-fault detection within the detection budget",
            objective=DETECTION_LATENCY_OBJECTIVE,
            histogram="duet_health_detection_latency_seconds",
            # The budget (default 90 ms) snaps to the 0.1 s bucket edge.
            threshold_s=max(detection_budget_s, 0.1),
        ),
    ]


def build_default_slos(
    registry: MetricsRegistry,
    detection_budget_s: float = 0.09,
) -> List[CompiledSlo]:
    """Compile the default set against a registry that already has the
    health + control-channel instrumentation installed."""
    return [
        compile_slo(spec, registry)
        for spec in default_slo_specs(detection_budget_s)
    ]
