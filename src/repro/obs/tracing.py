"""Control-plane tracing: causal span trees over controller operations.

A :class:`Tracer` owns a logical monotonic clock (an integer that
advances on every span boundary — deterministic, like the rest of the
repo) and a span stack: a span started while another is open becomes its
child, so one ``migrate_vip`` yields a full causal tree::

    op:migrate_vip
    ├─ migrate.withdraw
    │  └─ hmux.remove
    │     └─ bgp.withdraw
    ├─ migrate.smux_transit
    └─ migrate.reprogram
       └─ hmux.program
          └─ bgp.announce

Components hold no tracer by default: every hook goes through
:func:`maybe_span` / :func:`trace_event`, which are no-ops when the
tracer is ``None`` — the untraced hot path costs one ``is None`` test.

The :class:`PacketTap` is the data-plane sibling: it samples forwarded
flows and records their hop-by-hop decap/encap path (route resolution,
mux encapsulation, host-agent delivery).
"""

from __future__ import annotations

import json
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional


class TracingError(Exception):
    """Invalid tracer use."""


@dataclass
class Span:
    """One traced operation."""

    trace_id: int
    span_id: int
    parent_id: Optional[int]
    name: str
    start: int
    end: Optional[int] = None
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> Optional[int]:
        return None if self.end is None else self.end - self.start

    def to_dict(self) -> Dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "attrs": self.attrs,
        }


class Tracer:
    """Span factory with a logical clock and a parent stack."""

    def __init__(self) -> None:
        self._clock = 0
        self._next_trace_id = 1
        self._next_span_id = 1
        self._stack: List[int] = []
        self._spans: Dict[int, Span] = {}

    # -- clock --------------------------------------------------------------

    def now(self) -> int:
        """Advance and read the logical clock — strictly monotonic, so
        span timestamps totally order all traced boundaries."""
        self._clock += 1
        return self._clock

    # -- span lifecycle -----------------------------------------------------

    def start_span(self, name: str, **attrs: Any) -> Span:
        if self._stack:
            parent = self._spans[self._stack[-1]]
            trace_id = parent.trace_id
            parent_id = parent.span_id
        else:
            trace_id = self._next_trace_id
            self._next_trace_id += 1
            parent_id = None
        span = Span(
            trace_id=trace_id,
            span_id=self._next_span_id,
            parent_id=parent_id,
            name=name,
            start=self.now(),
            attrs=dict(attrs),
        )
        self._next_span_id += 1
        self._spans[span.span_id] = span
        self._stack.append(span.span_id)
        return span

    def finish(self, span: Span) -> None:
        if span.finished:
            raise TracingError(f"span {span.name!r} already finished")
        if not self._stack or self._stack[-1] != span.span_id:
            raise TracingError(
                f"span {span.name!r} is not the innermost open span"
            )
        self._stack.pop()
        span.end = self.now()

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        """Context-managed span; an escaping exception is recorded on
        the span (``error`` attr) and re-raised."""
        span = self.start_span(name, **attrs)
        try:
            yield span
        except BaseException as error:
            span.attrs["error"] = f"{type(error).__name__}: {error}"
            raise
        finally:
            self.finish(span)

    def event(self, name: str, **attrs: Any) -> Span:
        """A zero-duration span (journal writes, BGP route flaps)."""
        span = self.start_span(name, **attrs)
        self.finish(span)
        return span

    # -- introspection ------------------------------------------------------

    def spans(self) -> List[Span]:
        return list(self._spans.values())

    def roots(self) -> List[Span]:
        return [s for s in self._spans.values() if s.parent_id is None]

    def children(self, span_id: int) -> List[Span]:
        return [s for s in self._spans.values() if s.parent_id == span_id]

    def find(self, name: str) -> List[Span]:
        return [s for s in self._spans.values() if s.name == name]

    def descendants(self, span: Span) -> List[Span]:
        out: List[Span] = []
        frontier = [span.span_id]
        while frontier:
            nxt: List[int] = []
            for child in self._spans.values():
                if child.parent_id in frontier:
                    out.append(child)
                    nxt.append(child.span_id)
            frontier = nxt
        return out

    def clear(self) -> None:
        if self._stack:
            raise TracingError("cannot clear with open spans")
        self._spans.clear()

    # -- rendering / export -------------------------------------------------

    def render(self, trace_id: Optional[int] = None) -> str:
        """ASCII tree of one trace (or all of them)."""
        lines: List[str] = []
        for root in self.roots():
            if trace_id is not None and root.trace_id != trace_id:
                continue
            self._render_into(root, lines, prefix="", is_last=True,
                              is_root=True)
        return "\n".join(lines)

    def _render_into(
        self, span: Span, lines: List[str], *,
        prefix: str, is_last: bool, is_root: bool = False,
    ) -> None:
        attrs = "".join(
            f" {k}={v}" for k, v in span.attrs.items()
        )
        ticks = "?" if span.duration is None else str(span.duration)
        if is_root:
            lines.append(f"{span.name} [trace {span.trace_id}, "
                         f"{ticks} ticks]{attrs}")
            child_prefix = ""
        else:
            connector = "└─ " if is_last else "├─ "
            lines.append(f"{prefix}{connector}{span.name} "
                         f"[{ticks} ticks]{attrs}")
            child_prefix = prefix + ("   " if is_last else "│  ")
        children = sorted(self.children(span.span_id), key=lambda s: s.start)
        for i, child in enumerate(children):
            self._render_into(
                child, lines, prefix=child_prefix,
                is_last=(i == len(children) - 1),
            )

    def to_json_lines(self) -> List[str]:
        return [
            json.dumps(span.to_dict(), sort_keys=True)
            for span in self._spans.values()
        ]


def maybe_span(tracer: Optional[Tracer], name: str, **attrs: Any):
    """A tracer span, or a no-op context manager when untraced."""
    if tracer is None:
        return nullcontext()
    return tracer.span(name, **attrs)


def trace_event(tracer: Optional[Tracer], name: str, **attrs: Any) -> None:
    if tracer is not None:
        tracer.event(name, **attrs)


def span_attrs(params: Dict[str, Any]) -> Dict[str, Any]:
    """Scalar-only view of op params, safe to attach to a span (the
    full payload — serialized VIPs, whole assignments — belongs in the
    journal, not the trace)."""
    return {
        k: v for k, v in params.items()
        if isinstance(v, (int, float, str, bool)) or v is None
    }


# ---------------------------------------------------------------------------
# Per-packet tap
# ---------------------------------------------------------------------------

@dataclass
class TapRecord:
    """The hop-by-hop path of one sampled packet."""

    index: int              # sample's position in the forward stream
    flow: Any               # FiveTuple
    hops: List[Dict[str, Any]] = field(default_factory=list)

    def hop_names(self) -> List[str]:
        return [h["hop"] for h in self.hops]

    def to_dict(self) -> Dict[str, Any]:
        f = self.flow
        return {
            "index": self.index,
            "flow": {
                "src_ip": f.src_ip, "dst_ip": f.dst_ip,
                "src_port": f.src_port, "dst_port": f.dst_port,
                "protocol": f.protocol,
            },
            "hops": self.hops,
        }


class PacketTap:
    """Samples every ``sample_every``-th forwarded packet and records
    its decap/encap path.  Records live in a bounded deque-like list
    (oldest dropped) so a long soak cannot grow without bound."""

    def __init__(self, sample_every: int = 1, capacity: int = 256) -> None:
        if sample_every < 1:
            raise TracingError("sample_every must be >= 1")
        if capacity < 1:
            raise TracingError("tap capacity must be >= 1")
        self.sample_every = sample_every
        self.capacity = capacity
        self.seen = 0
        self.sampled = 0
        self._records: List[TapRecord] = []

    def begin(self, flow: Any) -> Optional[TapRecord]:
        """Start a record for this packet, or ``None`` when the sampler
        skips it."""
        index = self.seen
        self.seen += 1
        if index % self.sample_every != 0:
            return None
        record = TapRecord(index=index, flow=flow)
        self._records.append(record)
        if len(self._records) > self.capacity:
            del self._records[0]
        self.sampled += 1
        return record

    @staticmethod
    def hop(record: Optional[TapRecord], hop: str, **attrs: Any) -> None:
        if record is not None:
            record.hops.append({"hop": hop, **attrs})

    def records(self) -> List[TapRecord]:
        return list(self._records)

    def render(self) -> str:
        from repro.net.addressing import format_ip

        lines: List[str] = []
        for record in self._records:
            f = record.flow
            path = " -> ".join(
                h["hop"] + "(" + ",".join(
                    f"{k}={v}" for k, v in h.items() if k != "hop"
                ) + ")"
                for h in record.hops
            )
            lines.append(
                f"#{record.index} {format_ip(f.src_ip)}:{f.src_port} -> "
                f"{format_ip(f.dst_ip)}:{f.dst_port}  {path}"
            )
        return "\n".join(lines)

    def to_json_lines(self) -> List[str]:
        return [
            json.dumps(r.to_dict(), sort_keys=True) for r in self._records
        ]
