"""Typed metrics instruments and the pull-model registry.

Design: the hot paths (scalar ``process``, the batch engines) keep
mutating their existing plain-int counter structs — near-zero overhead,
no registry in the packet loop.  Observability happens at *scrape* time:
named **collectors** registered on the :class:`MetricsRegistry` copy the
component state into typed instruments when :meth:`MetricsRegistry.scrape`
runs.  Components therefore never hold a reference to the registry, and
a crash-restarted controller is re-observed simply by overwriting its
collector under the same name (see
:func:`repro.obs.instrument.instrument_controller`).

Instruments follow the Prometheus model:

* :class:`Counter` — monotone within one component incarnation; label
  children via :meth:`~Counter.labels`.  Collector adapters mirror an
  external counter with :meth:`~_CounterValue.set_total` (a mirrored
  value may *drop* when the underlying component was wiped, e.g. a
  failed switch — the fleet-cumulative view is rebuilt by the
  instrumentation layer, not here).
* :class:`Gauge` — goes up and down.
* :class:`Histogram` — fixed buckets, cumulative on export, with a
  bucket-interpolation :meth:`~_HistogramValue.quantile` estimate.

The :class:`Recorder` turns scrapes into per-tick time series held in
bounded ring buffers, keyed by ``(sample name, label pairs)``.
Timestamps default to the tick index — deterministic, like every clock
in this repo.
"""

from __future__ import annotations

import re
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram buckets (seconds-flavoured, like the Prometheus
#: client defaults).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class MetricError(Exception):
    """Invalid instrument definition or use."""


class Sample(NamedTuple):
    """One exported time-series point: histogram children expand into
    ``_bucket``/``_sum``/``_count`` samples."""

    name: str
    labels: Tuple[Tuple[str, str], ...]
    value: float


def format_series(name: str, labels: Tuple[Tuple[str, str], ...]) -> str:
    """Canonical ``name{k="v",...}`` rendering of a series key."""
    if not labels:
        return name
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return f"{name}{{{inner}}}"


class _Instrument:
    """Shared child bookkeeping for all three instrument kinds."""

    kind = "untyped"

    def __init__(
        self, name: str, help: str, label_names: Sequence[str] = (),
    ) -> None:
        if not _NAME_RE.match(name):
            raise MetricError(f"invalid metric name {name!r}")
        for label in label_names:
            if not _LABEL_RE.match(label):
                raise MetricError(f"invalid label name {label!r}")
        if len(set(label_names)) != len(label_names):
            raise MetricError(f"duplicate label names in {name!r}")
        self.name = name
        self.help = help
        self.label_names: Tuple[str, ...] = tuple(label_names)
        self._children: Dict[Tuple[str, ...], Any] = {}

    def _make_child(self) -> Any:  # pragma: no cover - overridden
        raise NotImplementedError

    def labels(self, *values: Any) -> Any:
        """The child for one label-value combination (created on first
        use).  Values are stringified, mirroring Prometheus clients."""
        if len(values) != len(self.label_names):
            raise MetricError(
                f"{self.name} takes {len(self.label_names)} label values, "
                f"got {len(values)}"
            )
        key = tuple(str(v) for v in values)
        child = self._children.get(key)
        if child is None:
            child = self._make_child()
            self._children[key] = child
        return child

    def items(self) -> List[Tuple[Tuple[str, ...], Any]]:
        """(label values, child) pairs in creation order."""
        return list(self._children.items())

    def prune(self, keep: Callable[[Tuple[str, ...]], bool]) -> int:
        """Drop children whose label values fail ``keep`` (used when a
        labelled component — an SMux, say — leaves the fleet)."""
        dead = [k for k in self._children if not keep(k)]
        for key in dead:
            del self._children[key]
        return len(dead)

    def _label_pairs(
        self, values: Tuple[str, ...]
    ) -> Tuple[Tuple[str, str], ...]:
        return tuple(zip(self.label_names, values))

    def samples(self) -> List[Sample]:  # pragma: no cover - overridden
        raise NotImplementedError


class _CounterValue:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise MetricError("counters only go up")
        self.value += amount

    def set_total(self, value: float) -> None:
        """Mirror an externally-maintained counter (collector adapters).
        Unlike :meth:`inc` this may lower the value: the mirrored
        component may have been wiped/restarted."""
        self.value = float(value)


class Counter(_Instrument):
    kind = "counter"

    def _make_child(self) -> _CounterValue:
        return _CounterValue()

    def inc(self, amount: float = 1.0) -> None:
        self.labels().inc(amount)

    def set_total(self, value: float) -> None:
        self.labels().set_total(value)

    def value(self, *label_values: Any) -> float:
        return self.labels(*label_values).value

    def total(self) -> float:
        """Sum over every child."""
        return sum(c.value for c in self._children.values())

    def samples(self) -> List[Sample]:
        return [
            Sample(self.name, self._label_pairs(values), child.value)
            for values, child in self._children.items()
        ]


class _GaugeValue:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Gauge(_Instrument):
    kind = "gauge"

    def _make_child(self) -> _GaugeValue:
        return _GaugeValue()

    def set(self, value: float) -> None:
        self.labels().set(value)

    def value(self, *label_values: Any) -> float:
        return self.labels(*label_values).value

    def samples(self) -> List[Sample]:
        return [
            Sample(self.name, self._label_pairs(values), child.value)
            for values, child in self._children.items()
        ]


class _HistogramValue:
    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets: Tuple[float, ...]) -> None:
        self.buckets = buckets          # ascending finite upper bounds
        self.counts = [0] * len(buckets)  # per-bucket (non-cumulative)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                return
        # falls into the implicit +Inf bucket only

    def cumulative_counts(self) -> List[int]:
        """Cumulative counts per finite bucket plus the +Inf bucket."""
        out: List[int] = []
        running = 0
        for c in self.counts:
            running += c
            out.append(running)
        out.append(self.count)
        return out

    def quantile(self, q: float) -> float:
        """Bucket-interpolated quantile estimate (the PromQL
        ``histogram_quantile`` algorithm): find the bucket holding the
        q-th observation, interpolate linearly inside it.  Error is
        bounded by the width of that bucket."""
        if not 0.0 <= q <= 1.0:
            raise MetricError(f"quantile {q} outside [0, 1]")
        if self.count == 0:
            return float("nan")
        rank = q * self.count
        running = 0
        lower = 0.0
        for i, bound in enumerate(self.buckets):
            prev = running
            running += self.counts[i]
            if running >= rank:
                if self.counts[i] == 0:
                    # Only reachable at rank 0 (q=0) landing on an empty
                    # leading bucket: the smallest observation is no
                    # larger than this bucket's *lower* edge, so report
                    # that, not the upper bound.
                    return lower
                frac = (rank - prev) / self.counts[i]
                return lower + frac * (bound - lower)
            lower = bound
        # Landed in +Inf: the best bounded estimate is the last finite
        # bound (PromQL returns the same).
        return self.buckets[-1] if self.buckets else float("nan")


class Histogram(_Instrument):
    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        label_names: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help, label_names)
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise MetricError(f"histogram {name!r} needs at least one bucket")
        if list(bounds) != sorted(set(bounds)):
            raise MetricError(
                f"histogram {name!r} buckets must be strictly ascending"
            )
        self.buckets = bounds

    def _make_child(self) -> _HistogramValue:
        return _HistogramValue(self.buckets)

    def observe(self, value: float) -> None:
        self.labels().observe(value)

    def samples(self) -> List[Sample]:
        out: List[Sample] = []
        for values, child in self._children.items():
            pairs = self._label_pairs(values)
            cumulative = child.cumulative_counts()
            for bound, count in zip(self.buckets, cumulative):
                out.append(Sample(
                    f"{self.name}_bucket",
                    pairs + (("le", _format_bound(bound)),),
                    float(count),
                ))
            out.append(Sample(
                f"{self.name}_bucket", pairs + (("le", "+Inf"),),
                float(cumulative[-1]),
            ))
            out.append(Sample(f"{self.name}_sum", pairs, child.sum))
            out.append(Sample(
                f"{self.name}_count", pairs, float(child.count),
            ))
        return out


def _format_bound(bound: float) -> str:
    return repr(bound) if bound != int(bound) else f"{int(bound)}.0"


class MetricsRegistry:
    """Instruments plus named collectors, scraped on demand.

    Collectors are callables ``fn(registry)`` that synchronise component
    state into instruments.  They are *named* and re-registration under
    the same name overwrites — that is how the chaos engine re-observes
    a crash-restarted controller without disturbing series continuity.
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, _Instrument] = {}
        self._collectors: Dict[str, Callable[["MetricsRegistry"], None]] = {}

    # -- instrument definition ---------------------------------------------

    def _get_or_create(
        self, cls, name: str, help: str, label_names: Sequence[str], **kwargs,
    ):
        existing = self._instruments.get(name)
        if existing is not None:
            if type(existing) is not cls:
                raise MetricError(
                    f"{name!r} already registered as {existing.kind}"
                )
            if existing.label_names != tuple(label_names):
                raise MetricError(
                    f"{name!r} already registered with labels "
                    f"{existing.label_names}"
                )
            return existing
        instrument = cls(name, help, label_names, **kwargs)
        self._instruments[name] = instrument
        return instrument

    def counter(
        self, name: str, help: str = "", label_names: Sequence[str] = (),
    ) -> Counter:
        return self._get_or_create(Counter, name, help, label_names)

    def gauge(
        self, name: str, help: str = "", label_names: Sequence[str] = (),
    ) -> Gauge:
        return self._get_or_create(Gauge, name, help, label_names)

    def histogram(
        self,
        name: str,
        help: str = "",
        label_names: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, label_names, buckets=buckets,
        )

    def get(self, name: str) -> Optional[_Instrument]:
        return self._instruments.get(name)

    def instruments(self) -> List[_Instrument]:
        return list(self._instruments.values())

    # -- collectors ---------------------------------------------------------

    def register_collector(
        self, name: str, fn: Callable[["MetricsRegistry"], None],
    ) -> None:
        """Install (or replace) the collector called ``name``."""
        self._collectors[name] = fn

    def unregister_collector(self, name: str) -> None:
        self._collectors.pop(name, None)

    def collector_names(self) -> List[str]:
        return list(self._collectors)

    # -- scraping -----------------------------------------------------------

    def collect(self) -> None:
        """Run every collector (component state -> instruments)."""
        for fn in list(self._collectors.values()):
            fn(self)

    def samples(self) -> List[Sample]:
        """Flatten every instrument into exposition samples, *without*
        running collectors (see :meth:`scrape`)."""
        out: List[Sample] = []
        for instrument in self._instruments.values():
            out.extend(instrument.samples())
        return out

    def scrape(self) -> List[Sample]:
        """Collect, then flatten: one consistent observation."""
        self.collect()
        return self.samples()


class RingBuffer:
    """Fixed-capacity (t, value) series; appends drop the oldest.

    Window-truncation semantics: once more than ``capacity`` points have
    been appended, the buffer holds the *most recent* ``capacity``
    points and :meth:`items` / :attr:`first` / :attr:`last` describe
    that retained window only.  Consumers computing deltas or rates
    (``Recorder.deltas``, the SLO engine) therefore always measure over
    the retained window, never the series' full lifetime — ``first`` is
    the oldest *surviving* point, which silently advances as old points
    are evicted."""

    __slots__ = ("capacity", "_items", "_start", "appended")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise MetricError("ring buffer capacity must be positive")
        self.capacity = capacity
        self._items: List[Tuple[float, float]] = []
        self._start = 0
        #: Total points ever appended (keeps counting past eviction) —
        #: lets incremental consumers detect new points in O(1).
        self.appended = 0

    def append(self, t: float, value: float) -> None:
        self.appended += 1
        if len(self._items) < self.capacity:
            self._items.append((t, value))
        else:
            self._items[self._start] = (t, value)
            self._start = (self._start + 1) % self.capacity

    def items(self) -> List[Tuple[float, float]]:
        return self._items[self._start:] + self._items[:self._start]

    def tail_window(
        self,
        start_t: Optional[float] = None,
        end_t: Optional[float] = None,
    ) -> List[Tuple[float, float]]:
        """Chronological points in ``[start_t, end_t]`` plus the last
        point *before* ``start_t`` as a rate baseline.  Scans backwards
        from the newest point and stops at the baseline, so the cost is
        O(window), not O(capacity) — the property the per-round SLO
        burn-rate evaluation depends on."""
        items = self._items
        n = len(items)
        out: List[Tuple[float, float]] = []
        for i in range(n - 1, -1, -1):
            point = items[(self._start + i) % n]
            if end_t is not None and point[0] > end_t:
                continue
            out.append(point)
            if start_t is not None and point[0] < start_t:
                break
        out.reverse()
        return out

    def tail(self, n: int) -> List[Tuple[float, float]]:
        """The newest ``n`` retained points in chronological order."""
        items = self._items
        count = len(items)
        n = min(n, count)
        if n <= 0:
            return []
        return [
            items[(self._start + count - n + i) % count] for i in range(n)
        ]

    def __len__(self) -> int:
        return len(self._items)

    @property
    def first(self) -> Optional[Tuple[float, float]]:
        items = self.items()
        return items[0] if items else None

    @property
    def last(self) -> Optional[Tuple[float, float]]:
        items = self.items()
        return items[-1] if items else None


SeriesKey = Tuple[str, Tuple[Tuple[str, str], ...]]


class Recorder:
    """Scrape-to-time-series pipeline: every :meth:`tick` runs the
    registry's collectors and appends each sample to that series' ring
    buffer."""

    def __init__(self, registry: MetricsRegistry, capacity: int = 512) -> None:
        self.registry = registry
        self.capacity = capacity
        self.ticks = 0
        self._series: Dict[SeriesKey, RingBuffer] = {}
        self._kind_cache: Dict[str, str] = {}
        # Partial-tick plans: instrument name -> (child count at build
        # time, [(child, [series buffers])]) — see _partial_plan.
        self._plans: Dict[str, Tuple[int, List[Tuple[Any, List[RingBuffer]]]]] = {}

    def tick(
        self,
        now: Optional[float] = None,
        only: Optional[Sequence[str]] = None,
    ) -> int:
        """One observation; returns the number of series touched.
        ``now`` defaults to the tick index (deterministic).

        ``only`` restricts the observation to the named instruments and
        **skips collectors entirely** — a partial tick.  That makes it
        cheap enough to run every probe round, but it only observes
        fresh values for instruments incremented directly on hot paths;
        collector-mirrored instruments would be stale, so they are not
        sampled at all.  Full ticks (``only=None``) scrape everything.
        """
        t = float(self.ticks if now is None else now)
        if only is not None:
            touched = self._partial_tick(t, only)
            self.ticks += 1
            return touched
        touched = 0
        for sample in self.registry.scrape():
            key = (sample.name, sample.labels)
            buf = self._series.get(key)
            if buf is None:
                buf = RingBuffer(self.capacity)
                self._series[key] = buf
            buf.append(t, sample.value)
            touched += 1
        self.ticks += 1
        return touched

    def _buffer_for(self, key: SeriesKey) -> RingBuffer:
        buf = self._series.get(key)
        if buf is None:
            buf = RingBuffer(self.capacity)
            self._series[key] = buf
        return buf

    def _partial_plan(
        self, instrument: Any,
    ) -> List[Tuple[Any, List[RingBuffer]]]:
        """Bind an instrument's children straight to their ring buffers
        so partial ticks skip sample construction entirely.  The series
        keys match :meth:`_Instrument.samples` exactly, so partial and
        full ticks land on the same series."""
        plan: List[Tuple[Any, List[RingBuffer]]] = []
        for values, child in instrument.items():
            pairs = instrument._label_pairs(values)
            if instrument.kind == "histogram":
                buffers = [
                    self._buffer_for((
                        f"{instrument.name}_bucket",
                        pairs + (("le", _format_bound(bound)),),
                    ))
                    for bound in instrument.buckets
                ]
                buffers.append(self._buffer_for((
                    f"{instrument.name}_bucket", pairs + (("le", "+Inf"),),
                )))
                buffers.append(
                    self._buffer_for((f"{instrument.name}_sum", pairs))
                )
                buffers.append(
                    self._buffer_for((f"{instrument.name}_count", pairs))
                )
            else:
                buffers = [self._buffer_for((instrument.name, pairs))]
            plan.append((child, buffers))
        return plan

    def _partial_tick(self, t: float, only: Sequence[str]) -> int:
        touched = 0
        for name in only:
            instrument = self.registry.get(name)
            if instrument is None:
                continue
            cached = self._plans.get(name)
            n_children = len(instrument._children)
            if cached is None or cached[0] != n_children:
                cached = (n_children, self._partial_plan(instrument))
                self._plans[name] = cached
            if instrument.kind == "histogram":
                for child, buffers in cached[1]:
                    cumulative = child.cumulative_counts()
                    for i, count in enumerate(cumulative):
                        buffers[i].append(t, float(count))
                    buffers[-2].append(t, child.sum)
                    buffers[-1].append(t, float(child.count))
                    touched += len(buffers)
            else:
                for child, buffers in cached[1]:
                    buffers[0].append(t, child.value)
                    touched += 1
        return touched

    def series_keys(self) -> List[SeriesKey]:
        return list(self._series)

    @property
    def n_series(self) -> int:
        """Series count — cheap cache-invalidation signal for consumers
        (the alert evaluator) that memoise selector -> buffer maps."""
        return len(self._series)

    def buffer(self, key: SeriesKey) -> Optional[RingBuffer]:
        """Direct ring-buffer access for one series (or ``None``)."""
        return self._series.get(key)

    def series(
        self, name: str, labels: Tuple[Tuple[str, str], ...] = (),
    ) -> List[Tuple[float, float]]:
        buf = self._series.get((name, labels))
        return buf.items() if buf is not None else []

    def latest(
        self, name: str, labels: Tuple[Tuple[str, str], ...] = (),
    ) -> Optional[float]:
        buf = self._series.get((name, labels))
        if buf is None or buf.last is None:
            return None
        return buf.last[1]

    def _series_kind(self, name: str) -> str:
        """``counter`` (monotonic: reset-aware delta) or ``gauge``
        (last - first).  Histogram ``_bucket``/``_count``/``_sum``
        children count as counters.  Unknown names default to gauge and
        are *not* cached — the instrument may register later."""
        kind = self._kind_cache.get(name)
        if kind is not None:
            return kind
        instrument = self.registry.get(name)
        if instrument is None:
            for suffix in ("_bucket", "_count", "_sum"):
                if name.endswith(suffix):
                    instrument = self.registry.get(name[: -len(suffix)])
                    if instrument is not None:
                        break
        if instrument is None:
            return "gauge"
        kind = (
            "counter" if instrument.kind in ("counter", "histogram")
            else "gauge"
        )
        self._kind_cache[name] = kind
        return kind

    def deltas(self) -> Dict[SeriesKey, float]:
        """Movement per series over the recorded window.

        Gauge series report ``last - first``.  Counter-kind series
        (counters and histogram children) report the *reset-aware
        increase*: the sum of positive increments, treating any decrease
        as a restart of a fresh incarnation (crash-restart, switch wipe)
        whose current value all counts — so 0 -> 100 -> 0 -> 5 is an
        increase of 105, not a misleading delta of 5."""
        out: Dict[SeriesKey, float] = {}
        for key, buf in self._series.items():
            points = buf.items()
            if not points:
                continue
            if self._series_kind(key[0]) == "counter":
                increase = 0.0
                prev = points[0][1]
                for _, value in points[1:]:
                    step = value - prev
                    increase += step if step >= 0 else value
                    prev = value
                out[key] = increase
            else:
                out[key] = points[-1][1] - points[0][1]
        return out

    def top_deltas(self, n: int = 10) -> List[Tuple[str, float]]:
        """The ``n`` series that moved the most (by absolute delta) over
        the window, as (rendered series name, delta) — the telemetry
        context attached to chaos soak summaries and artifacts."""
        ranked = sorted(
            (
                (format_series(name, labels), delta)
                for (name, labels), delta in self.deltas().items()
                if delta != 0.0
            ),
            key=lambda item: (-abs(item[1]), item[0]),
        )
        return ranked[:n]

    def iter_points(
        self,
    ) -> Iterable[Tuple[SeriesKey, List[Tuple[float, float]]]]:
        for key, buf in self._series.items():
            yield key, buf.items()
