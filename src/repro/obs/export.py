"""Exporters for registry/recorder state, plus a Prometheus-text linter.

Two export surfaces:

* :func:`render_prometheus` — the classic Prometheus text exposition
  format (``# HELP`` / ``# TYPE`` headers, one sample per line), which
  :func:`validate_prometheus_text` can lint without any third-party
  dependency (CI runs it against `repro metrics` output).
* :func:`render_registry_jsonl` / :func:`render_recorder_jsonl` —
  JSON-lines dumps: one sample (or one full time series) per line, for
  ad-hoc analysis with `jq`/pandas.

``python -m repro.obs.export <file.prom>`` lints a dump from disk.
"""

from __future__ import annotations

import json
import re
import sys
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.registry import MetricsRegistry, Recorder, Sample

_METRIC_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)(?: (?P<timestamp>-?\d+))?$"
)
_LABEL_PAIR_RE = re.compile(
    r'^(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"$'
)


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(text: str) -> str:
    return (
        text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _format_sample(sample: Sample) -> str:
    if sample.labels:
        inner = ",".join(
            f'{k}="{_escape_label_value(v)}"' for k, v in sample.labels
        )
        return f"{sample.name}{{{inner}}} {_format_value(sample.value)}"
    return f"{sample.name} {_format_value(sample.value)}"


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry's current state (no collect — callers scrape first
    for a consistent observation) in Prometheus text format."""
    lines: List[str] = []
    for instrument in registry.instruments():
        samples = instrument.samples()
        if not samples:
            continue
        lines.append(
            f"# HELP {instrument.name} {_escape_help(instrument.help)}"
        )
        lines.append(f"# TYPE {instrument.name} {instrument.kind}")
        for sample in samples:
            lines.append(_format_sample(sample))
    return "\n".join(lines) + "\n" if lines else ""


def render_registry_jsonl(registry: MetricsRegistry) -> List[str]:
    """One JSON object per sample (current registry state)."""
    out: List[str] = []
    for instrument in registry.instruments():
        for sample in instrument.samples():
            out.append(json.dumps({
                "name": sample.name,
                "kind": instrument.kind,
                "labels": dict(sample.labels),
                "value": sample.value,
            }, sort_keys=True))
    return out


def render_recorder_jsonl(recorder: Recorder) -> List[str]:
    """One JSON object per recorded time series, points as [t, value]."""
    out: List[str] = []
    for (name, labels), points in recorder.iter_points():
        out.append(json.dumps({
            "name": name,
            "labels": dict(labels),
            "points": [[t, v] for t, v in points],
        }, sort_keys=True))
    return out


def _parse_value(text: str) -> Optional[float]:
    if text == "+Inf":
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    if text == "NaN":
        return float("nan")
    try:
        return float(text)
    except ValueError:
        return None


def validate_prometheus_text(text: str) -> List[str]:
    """Lint a Prometheus text-format dump; returns error strings (empty
    when valid).  Checks the structural rules a scraper relies on:
    sample syntax, HELP/TYPE placement, one TYPE per family, grouped
    families, no duplicate series, histogram bucket shape."""
    errors: List[str] = []
    typed: Dict[str, str] = {}
    helped: Dict[str, str] = {}
    seen_series: Dict[str, int] = {}
    family_done: List[str] = []   # families we've moved past
    current_family: Optional[str] = None
    histogram_buckets: Dict[str, List[Tuple[float, float]]] = {}
    histogram_counts: Dict[str, float] = {}

    def family_of(name: str) -> str:
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix):
                base = name[: -len(suffix)]
                if typed.get(base) == "histogram":
                    return base
        return name

    def switch_family(line_no: int, family: str) -> None:
        nonlocal current_family
        if family == current_family:
            return
        if current_family is not None:
            family_done.append(current_family)
        if family in family_done:
            errors.append(
                f"line {line_no}: family {family!r} reappears after other "
                "families (samples must be grouped)"
            )
        current_family = family

    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.rstrip("\n")
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line[len("# HELP "):].split(" ", 1)
            name = parts[0]
            if not _METRIC_RE.match(name):
                errors.append(f"line {line_no}: bad metric name {name!r}")
                continue
            if name in helped:
                errors.append(f"line {line_no}: duplicate HELP for {name!r}")
            helped[name] = parts[1] if len(parts) > 1 else ""
            switch_family(line_no, name)
            continue
        if line.startswith("# TYPE "):
            parts = line[len("# TYPE "):].split(" ")
            if len(parts) != 2:
                errors.append(f"line {line_no}: malformed TYPE line")
                continue
            name, kind = parts
            if not _METRIC_RE.match(name):
                errors.append(f"line {line_no}: bad metric name {name!r}")
                continue
            if kind not in ("counter", "gauge", "histogram", "summary",
                            "untyped"):
                errors.append(
                    f"line {line_no}: unknown metric type {kind!r}"
                )
                continue
            if name in typed:
                errors.append(f"line {line_no}: duplicate TYPE for {name!r}")
            typed[name] = kind
            switch_family(line_no, name)
            continue
        if line.startswith("#"):
            continue  # comment
        match = _SAMPLE_RE.match(line)
        if not match:
            errors.append(f"line {line_no}: unparseable sample {line!r}")
            continue
        name = match.group("name")
        value = _parse_value(match.group("value"))
        if value is None:
            errors.append(
                f"line {line_no}: bad sample value {match.group('value')!r}"
            )
            continue
        labels: Dict[str, str] = {}
        raw_labels = match.group("labels")
        if raw_labels:
            for pair in _split_label_pairs(raw_labels):
                pair_match = _LABEL_PAIR_RE.match(pair)
                if not pair_match:
                    errors.append(
                        f"line {line_no}: malformed label pair {pair!r}"
                    )
                    continue
                key = pair_match.group("key")
                if key in labels:
                    errors.append(
                        f"line {line_no}: duplicate label {key!r}"
                    )
                labels[key] = pair_match.group("value")
        series = name + "|" + ",".join(
            f"{k}={v}" for k, v in sorted(labels.items())
        )
        if series in seen_series:
            errors.append(
                f"line {line_no}: duplicate series (first seen on line "
                f"{seen_series[series]}): {line!r}"
            )
        else:
            seen_series[series] = line_no
        family = family_of(name)
        switch_family(line_no, family)
        if typed.get(family) == "histogram":
            if name.endswith("_bucket"):
                le = labels.get("le")
                if le is None:
                    errors.append(
                        f"line {line_no}: histogram bucket without le label"
                    )
                else:
                    bound = _parse_value(le)
                    if bound is None:
                        errors.append(
                            f"line {line_no}: bad le value {le!r}"
                        )
                    else:
                        key = family + "|" + ",".join(
                            f"{k}={v}" for k, v in sorted(labels.items())
                            if k != "le"
                        )
                        histogram_buckets.setdefault(key, []).append(
                            (bound, value)
                        )
            elif name.endswith("_count"):
                key = family + "|" + ",".join(
                    f"{k}={v}" for k, v in sorted(labels.items())
                )
                histogram_counts[key] = value

    for key, buckets in histogram_buckets.items():
        family = key.split("|", 1)[0]
        bounds = [b for b, _ in buckets]
        if bounds != sorted(bounds):
            errors.append(
                f"histogram {family!r}: bucket bounds not ascending ({key})"
            )
        counts = [c for _, c in buckets]
        if counts != sorted(counts):
            errors.append(
                f"histogram {family!r}: bucket counts not cumulative ({key})"
            )
        if not bounds or bounds[-1] != float("inf"):
            errors.append(
                f"histogram {family!r}: missing le=\"+Inf\" bucket ({key})"
            )
        elif key in histogram_counts and counts[-1] != histogram_counts[key]:
            errors.append(
                f"histogram {family!r}: +Inf bucket != _count ({key})"
            )
    return errors


def _split_label_pairs(raw: str) -> List[str]:
    """Split ``k="v",k2="v2"`` on commas outside quotes."""
    out: List[str] = []
    depth_quote = False
    escaped = False
    current: List[str] = []
    for ch in raw:
        if escaped:
            current.append(ch)
            escaped = False
            continue
        if ch == "\\":
            current.append(ch)
            escaped = True
            continue
        if ch == '"':
            depth_quote = not depth_quote
            current.append(ch)
            continue
        if ch == "," and not depth_quote:
            out.append("".join(current))
            current = []
            continue
        current.append(ch)
    if current:
        out.append("".join(current))
    return out


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Lint Prometheus text dumps: ``python -m repro.obs.export f.prom``.

    ``-`` lints stdin, so a scrape can be piped straight through the
    linter without touching disk.  Exit status: 0 all clean, 1 lint
    findings, 2 unreadable input / usage error.
    """
    args = list(sys.argv[1:] if argv is None else argv)
    if not args:
        print("usage: python -m repro.obs.export DUMP.prom [...|-]",
              file=sys.stderr)
        return 2
    status = 0
    for path in args:
        try:
            if path == "-":
                path = "<stdin>"
                text = sys.stdin.read()
            else:
                with open(path, "r", encoding="utf-8") as fh:
                    text = fh.read()
        except OSError as error:
            print(f"{path}: {error}", file=sys.stderr)
            status = 2
            continue
        errors = validate_prometheus_text(text)
        if errors:
            status = 1
            for err in errors:
                print(f"{path}: {err}")
        else:
            n_samples = sum(
                1 for line in text.splitlines()
                if line.strip() and not line.startswith("#")
            )
            print(f"{path}: ok ({n_samples} samples)")
    return status


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
