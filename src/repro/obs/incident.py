"""Incident forensics: from "an alert fired" to "what broke, when, why".

When the :class:`~repro.obs.alerts.AlertEvaluator` fires, the operator
question is never "what is the burn rate" — it is *which fault caused
this, what did the control plane do about it, and can I see the whole
sequence in order*.  :func:`build_incident` answers it by assembling a
causally ordered timeline around the alert from every ground-truth and
control-plane source the repo already records:

* chaos events applied by the engine (with their simulated timestamps),
* :class:`~repro.health.faults.FaultPlane` fault lifecycles
  (injected / detected / remediated / cleared),
* the health monitor's transition / verdict / remediation timeline,
* the write-ahead journal's most recent records,
* the control channel's ledger (timeouts, unreconciled devices) and
  counters,
* nearby trace spans from an attached
  :class:`~repro.obs.tracing.Tracer`.

The artifact embeds the chaos config and the fully specified event
prefix, so — like a :class:`~repro.chaos.engine.ChaosArtifact` — it is
*replayable*: rerunning the prefix reproduces the identical timeline
bit for bit (everything is seeded and timestamps come from the sim
clock).

:class:`AlertScorecard` closes the judging loop: alert incidents are
scored against the fault plane's ground truth for precision, recall,
and time-to-fire, mirroring how
:class:`~repro.health.invariants.HealthScorecard` judges the detector.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs.alerts import AlertEvaluator, AlertIncident
from repro.obs.slo import SloError

# Fault kinds whose probe-visible impact is direct enough that an alert
# is *expected*; gray failures may be too shallow/narrow to move a
# fleet-level SLO and are judged as bonus coverage, not recall misses.
ALERTABLE_FAULT_KINDS = ("switch-silent", "smux-silent")

#: Default pre-alert context: how far before the fire the timeline
#: reaches back (40 probe rounds at the 3 ms default period).
DEFAULT_CONTEXT_S = 0.12

_JOURNAL_TAIL = 12
_SPAN_TAIL = 8


def _entry(t: float, source: str, kind: str, **extra: Any) -> Dict[str, Any]:
    entry: Dict[str, Any] = {"t": t, "source": source, "kind": kind}
    entry.update(extra)
    return entry


@dataclass
class Incident:
    """One replayable incident artifact built when an alert fired."""

    incident_id: str
    alert: Dict[str, Any]
    window: Dict[str, float]
    timeline: List[Dict[str, Any]] = field(default_factory=list)
    faults: List[Dict[str, Any]] = field(default_factory=list)
    suspected_cause: Optional[Dict[str, Any]] = None
    journal_tail: List[Dict[str, Any]] = field(default_factory=list)
    ledger: Dict[str, Any] = field(default_factory=dict)
    channel: Dict[str, Any] = field(default_factory=dict)
    spans: List[Dict[str, Any]] = field(default_factory=list)
    replay: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "incident_id": self.incident_id,
            "alert": self.alert,
            "window": self.window,
            "timeline": self.timeline,
            "faults": self.faults,
            "suspected_cause": self.suspected_cause,
            "journal_tail": self.journal_tail,
            "ledger": self.ledger,
            "channel": self.channel,
            "spans": self.spans,
            "replay": self.replay,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())
            fh.write("\n")

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Incident":
        return cls(
            incident_id=data["incident_id"],
            alert=dict(data["alert"]),
            window=dict(data["window"]),
            timeline=list(data.get("timeline", [])),
            faults=list(data.get("faults", [])),
            suspected_cause=data.get("suspected_cause"),
            journal_tail=list(data.get("journal_tail", [])),
            ledger=dict(data.get("ledger", {})),
            channel=dict(data.get("channel", {})),
            spans=list(data.get("spans", [])),
            replay=dict(data.get("replay", {})),
        )

    @classmethod
    def load(cls, path: str) -> "Incident":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))


def _fault_points(record_dict: Dict[str, Any]) -> List[Tuple[float, str]]:
    points = [(record_dict["injected_t"], "fault-injected")]
    for key, kind in (
        ("detected_t", "fault-detected"),
        ("remediated_t", "fault-remediated"),
        ("cleared_t", "fault-cleared"),
    ):
        t = record_dict.get(key)
        if t is not None:
            points.append((t, kind))
    return points


def _suspect(
    faults: Sequence[Dict[str, Any]], fire_t: float
) -> Optional[Dict[str, Any]]:
    """Root-cause heuristic: the most recent fault injected before the
    alert fired that was still uncleared at fire time; failing that, the
    most recently injected fault in the window."""
    candidates = [f for f in faults if f["injected_t"] <= fire_t]
    live = [
        f for f in candidates
        if f["cleared_t"] is None or f["cleared_t"] >= fire_t
    ]
    pool = live or candidates
    if not pool:
        return None
    return max(pool, key=lambda f: f["injected_t"])


def build_incident(
    alert: AlertIncident,
    *,
    now: float,
    config: Optional[Any] = None,
    events: Sequence[Tuple[float, Dict[str, Any]]] = (),
    fault_plane: Optional[Any] = None,
    monitor: Optional[Any] = None,
    controller: Optional[Any] = None,
    tracer: Optional[Any] = None,
    index: int = 0,
    context_s: float = DEFAULT_CONTEXT_S,
) -> Incident:
    """Assemble the forensic artifact for a just-fired ``alert``.

    ``events`` is the engine's applied-event log as ``(sim_t,
    event_dict)`` pairs; the *full* prefix up to the fire goes into the
    replay block (replay needs every event, not just windowed ones),
    while only in-window events land on the timeline.
    """
    start_t = min(alert.pending_t, alert.fire_t - context_s)
    window = {"start_t": start_t, "end_t": now}
    timeline: List[Dict[str, Any]] = []

    for t, event_dict in events:
        if start_t <= t <= now:
            timeline.append(_entry(
                t, "chaos", f"event:{event_dict.get('kind', '?')}",
                params=event_dict.get("params", {}),
            ))

    faults: List[Dict[str, Any]] = []
    if fault_plane is not None:
        for record in fault_plane.log:
            rec = record.to_dict()
            points = _fault_points(rec)
            in_window = any(start_t <= t <= now for t, _ in points)
            if not in_window:
                continue
            faults.append(rec)
            for t, kind in points:
                if start_t <= t <= now:
                    timeline.append(_entry(
                        t, "fault-plane", kind,
                        fault_kind=rec["kind"], target=rec["target"],
                    ))

    if monitor is not None:
        for item in monitor.timeline:
            t = item.get("t")
            if t is not None and start_t <= t <= now:
                entry = _entry(t, "monitor", str(item.get("type", "event")))
                for k, v in item.items():
                    if k in ("t", "type"):
                        continue
                    # Monitor verdicts carry their own "kind"; keep it
                    # without clobbering the timeline entry's kind.
                    entry["verdict_kind" if k == "kind" else k] = v
                timeline.append(entry)

    timeline.append(_entry(
        alert.pending_t, "alert", "alert-pending",
        slo=alert.slo, severity=alert.severity,
    ))
    timeline.append(_entry(
        alert.fire_t, "alert", "alert-fired",
        slo=alert.slo, severity=alert.severity,
        long_burn=alert.peak_long_burn, short_burn=alert.peak_short_burn,
    ))
    # Stable sort: ties keep source insertion order (chaos, fault-plane,
    # monitor, alert) so replays produce byte-identical timelines.
    timeline.sort(key=lambda e: e["t"])

    journal_tail: List[Dict[str, Any]] = []
    ledger: Dict[str, Any] = {}
    channel: Dict[str, Any] = {}
    if controller is not None:
        journal = getattr(controller, "journal", None)
        if journal is not None:
            journal_tail = journal.records()[-_JOURNAL_TAIL:]
        led = getattr(controller, "ledger", None)
        if led is not None:
            ledger = {
                "opened": led.opened,
                "acked": led.acked,
                "retries": led.retries,
                "timeouts": led.timeouts,
                "rejected": led.rejected,
                "pending": len(led.pending()),
                "unreconciled": sorted(led.unreconciled),
            }
        chan = getattr(controller, "channel", None)
        if chan is not None:
            channel = dict(chan.stats.as_dict())
            channel["epoch"] = chan.epoch
            channel["partitioned"] = sorted(chan.partitioned)

    spans: List[Dict[str, Any]] = []
    if tracer is not None:
        for span in tracer.spans()[-_SPAN_TAIL:]:
            spans.append({
                "name": span.name,
                "trace_id": span.trace_id,
                "span_id": span.span_id,
                "parent_id": span.parent_id,
                "start": span.start,
                "end": span.end,
            })

    replay: Dict[str, Any] = {}
    if config is not None:
        replay = {
            "config": config.to_dict(),
            "events": [event_dict for _, event_dict in events],
        }

    return Incident(
        incident_id=f"{alert.slo}:{alert.severity}:{index:03d}",
        alert=alert.to_dict(),
        window=window,
        timeline=timeline,
        faults=faults,
        suspected_cause=_suspect(faults, alert.fire_t),
        journal_tail=journal_tail,
        ledger=ledger,
        channel=channel,
        spans=spans,
        replay=replay,
    )


def replay_incident(incident: Incident) -> Optional[Incident]:
    """Re-run the incident's embedded config + event prefix through a
    scripted chaos engine and return the regenerated incident with the
    same id (or ``None`` if it failed to reproduce).  A faithful
    artifact regenerates a byte-identical timeline — everything feeding
    it is seeded and timestamped on the sim clock."""
    if not incident.replay:
        raise SloError(
            f"incident {incident.incident_id} has no replay block"
        )
    from repro.chaos.engine import ChaosConfig, ChaosEngine
    from repro.chaos.events import ChaosEvent

    config = ChaosConfig.from_dict(incident.replay["config"])
    events = [ChaosEvent.from_dict(e) for e in incident.replay["events"]]
    engine = ChaosEngine(config, events=events)
    engine.run()
    for regenerated in engine.incidents:
        if regenerated.incident_id == incident.incident_id:
            return regenerated
    return None


class AlertScorecard:
    """Judge alert incidents against fault-plane ground truth.

    Mirrors :class:`~repro.health.invariants.HealthScorecard`, but for
    the alerting layer: an incident is a *true positive* if its impact
    interval overlaps any injected fault's lifetime (plus a detection
    grace after clearance — burn windows lag the fault by design), and
    a fault is *covered* if at least one incident matches it.

    Recall is computed over :data:`ALERTABLE_FAULT_KINDS` faults whose
    lifetime is at least ``min_impact_s`` — a fault cleared within a
    single burn window cannot move any alert and is not a miss.
    """

    def __init__(
        self,
        fault_plane: Any,
        evaluator: AlertEvaluator,
        *,
        detection_budget_s: float = 0.09,
        min_impact_s: float = 0.018,
    ) -> None:
        if fault_plane is None:
            raise SloError("AlertScorecard requires a fault plane")
        self.fault_plane = fault_plane
        self.evaluator = evaluator
        self.detection_budget_s = detection_budget_s
        self.min_impact_s = min_impact_s

    def _incident_interval(
        self, incident: AlertIncident, now: float
    ) -> Tuple[float, float]:
        start = incident.pending_t - incident.window.long_s
        end = incident.resolve_t if incident.resolve_t is not None else now
        return (start, end)

    def _fault_interval(self, record: Any, now: float) -> Tuple[float, float]:
        end = record.cleared_t if record.cleared_t is not None else now
        return (record.injected_t, end + self.detection_budget_s)

    def stats(self, now: float) -> Dict[str, Any]:
        incidents = self.evaluator.incidents
        records = list(self.fault_plane.log)

        matched_faults: Dict[int, float] = {}  # fault idx -> first fire_t
        true_positives = 0
        for incident in incidents:
            i_start, i_end = self._incident_interval(incident, now)
            hit = False
            for idx, record in enumerate(records):
                f_start, f_end = self._fault_interval(record, now)
                if i_start <= f_end and f_start <= i_end:
                    hit = True
                    prev = matched_faults.get(idx)
                    if prev is None or incident.fire_t < prev:
                        matched_faults[idx] = incident.fire_t
            if hit:
                true_positives += 1

        eligible = [
            idx for idx, record in enumerate(records)
            if record.kind in ALERTABLE_FAULT_KINDS
            and (
                (record.cleared_t if record.cleared_t is not None else now)
                - record.injected_t
            ) >= self.min_impact_s
        ]
        matched_eligible = [idx for idx in eligible if idx in matched_faults]

        matched_by_kind: Dict[str, int] = {}
        for idx in matched_faults:
            kind = records[idx].kind
            matched_by_kind[kind] = matched_by_kind.get(kind, 0) + 1

        time_to_fire = sorted(
            matched_faults[idx] - records[idx].injected_t
            for idx in matched_eligible
            if matched_faults[idx] >= records[idx].injected_t
        )
        n = len(time_to_fire)
        median_ttf = time_to_fire[n // 2] if n else None

        return {
            "incidents": len(incidents),
            "true_positives": true_positives,
            "false_positives": len(incidents) - true_positives,
            "precision": (
                true_positives / len(incidents) if incidents else 1.0
            ),
            "faults_total": len(records),
            "eligible_faults": len(eligible),
            "matched_faults": len(matched_eligible),
            "matched_by_kind": matched_by_kind,
            "recall": (
                len(matched_eligible) / len(eligible) if eligible else 1.0
            ),
            "time_to_fire_s": time_to_fire,
            "median_time_to_fire_s": median_ttf,
            "max_time_to_fire_s": time_to_fire[-1] if time_to_fire else None,
        }
