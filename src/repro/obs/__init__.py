"""Observability: metrics registry, recorder, tracing, taps, exporters."""

from repro.obs.export import (
    render_prometheus,
    render_recorder_jsonl,
    render_registry_jsonl,
    validate_prometheus_text,
)
from repro.obs.instrument import (
    DEFAULT_PREFIX,
    ControllerInstrumentation,
    conservation_violations,
    instrument_controller,
    instrument_hmux,
    instrument_smux,
)
from repro.obs.registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    Recorder,
    RingBuffer,
    Sample,
    format_series,
)
from repro.obs.tracing import (
    PacketTap,
    Span,
    TapRecord,
    Tracer,
    TracingError,
    maybe_span,
    span_attrs,
    trace_event,
)

__all__ = [
    "ControllerInstrumentation",
    "Counter",
    "DEFAULT_BUCKETS",
    "DEFAULT_PREFIX",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
    "PacketTap",
    "Recorder",
    "RingBuffer",
    "Sample",
    "Span",
    "TapRecord",
    "Tracer",
    "TracingError",
    "conservation_violations",
    "format_series",
    "instrument_controller",
    "instrument_hmux",
    "instrument_smux",
    "maybe_span",
    "render_prometheus",
    "render_recorder_jsonl",
    "render_registry_jsonl",
    "span_attrs",
    "trace_event",
    "validate_prometheus_text",
]
