"""The fault-injectable control channel between controller and devices.

Production Duet programs HMuxes/SMuxes/host agents over a real network:
commands can be lost, delayed, duplicated, or cut off wholesale by a
partition.  This module models that channel while keeping the repro
synchronous and deterministic.

Every programming command carries a **fencing epoch** (bumped each time
a controller incarnation takes over after a crash) and a **per-device
sequence number**.  The device side keeps a last-applied ``(epoch,
seq)`` watermark and applies a delivery only when its stamp is strictly
newer — so duplicate and stale deliveries are dropped with zero side
effects, and a command issued by a deposed controller incarnation can
never clobber a newer one.  ``stats.stale_applied`` counts fencing
violations (a stale command that mutated a device); the chaos invariant
battery asserts it stays 0.

Delivery semantics of the injected faults:

``loss``
    The command never reaches the device.  ``send`` raises
    :class:`ChannelSendError`; the controller's retry path re-sends
    with a fresh sequence number.
``delay``
    The command is delivered and acked now, but a **duplicate copy**
    stays queued in flight and is re-delivered on a later
    :meth:`ControlChannel.pump` — the device must fence-reject it.
``partition``
    All *lossy-scoped* sends to the device fail until
    :meth:`ControlChannel.heal`.

Faults are scoped to the programming ops (:data:`LOSSY_OPS`), matching
the long-standing :class:`~repro.net.failures.FaultModel` convention:
withdrawals and unwinds stay reliable, because a failed withdrawal
would strand a route — BGP neighbours withdraw on session loss, the
one part of the control plane with built-in failure semantics.
Duplicate (delayed) copies are queued for *every* op, reliable or not:
fencing must make any redelivery safe.

The controller side keeps a :class:`PendingOpsLedger`: one ticket per
logical programming op, opened before the first send and settled as
acked / timed out / rejected.  The ledger is deliberately in-memory —
its durable twin is the write-ahead journal's uncommitted tail, which
recovery rolls forward (see ``durability/recovery.py``).
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    List,
    Optional,
    Set,
    Tuple,
    Union,
)

from repro.net.failures import as_rng

#: Ops subject to injected loss/partition.  Everything else (withdraw,
#: remove, SMux/host management) is reliable but still fenced.
LOSSY_OPS = frozenset({"program_vip", "program_vip_port"})


class ChannelSendError(Exception):
    """A command did not reach its device (lost or partitioned).  The
    command was NOT applied: the channel never half-delivers."""


@dataclass(slots=True)
class ChannelStats:
    """Cumulative counters for one channel (survives controller crashes
    alongside the dataplane — the deployment's channel, not one
    incarnation's)."""

    sends: int = 0             # commands handed to the channel
    applied: int = 0           # deliveries that mutated the device
    losses: int = 0            # lossy-op sends dropped in flight
    partition_drops: int = 0   # lossy-op sends to a partitioned device
    delayed_dups: int = 0      # duplicate copies queued for redelivery
    dup_drops: int = 0         # duplicate deliveries fence-dropped
    fence_rejects: int = 0     # stale-epoch deliveries fence-dropped
    stale_applied: int = 0     # fencing violations (invariant: stays 0)
    pumps: int = 0             # redelivery sweeps
    heals: int = 0             # partitions healed / weather cleared

    def as_dict(self) -> Dict[str, int]:
        return {
            "sends": self.sends,
            "applied": self.applied,
            "losses": self.losses,
            "partition_drops": self.partition_drops,
            "delayed_dups": self.delayed_dups,
            "dup_drops": self.dup_drops,
            "fence_rejects": self.fence_rejects,
            "stale_applied": self.stale_applied,
            "pumps": self.pumps,
            "heals": self.heals,
        }


@dataclass(slots=True)
class _Command:
    """One stamped delivery (also the queued-duplicate form)."""

    device: str
    epoch: int
    seq: int
    op: str
    fn: Callable[[], Any]


@dataclass(slots=True)
class _DeviceState:
    next_seq: int = 0
    applied_epoch: int = -1
    applied_seq: int = -1


class ControlChannel:
    """Epoch-fenced, seeded-fault command channel to the device fleet.

    Devices are addressed by string id (``"switch:3"``, ``"smux:1"``,
    ``"host:17"``).  The channel object belongs to the *deployment*:
    it is harvested with the surviving dataplane across controller
    crashes, and the restored incarnation bumps :attr:`epoch` so any
    still-queued deliveries from the dead incarnation are fenced off.
    """

    def __init__(
        self,
        seed: Union[int, random.Random] = 0,
        *,
        loss_prob: float = 0.0,
        delay_prob: float = 0.0,
    ) -> None:
        self.rng = as_rng(seed)
        self.epoch = 0
        self.partitioned: Set[str] = set()
        self.loss_prob = 0.0
        self.delay_prob = 0.0
        self.set_loss(loss_prob)
        self.set_delay(delay_prob)
        self.stats = ChannelStats()
        self._devices: Dict[str, _DeviceState] = {}
        self._in_flight: Deque[_Command] = deque()
        # Convergence-latency samples (seconds per heal->reconcile),
        # buffered for the metrics collector to drain (same pattern as
        # the assignment solve histogram).
        self._pending_convergences: List[float] = []

    # -- fault injection -------------------------------------------------------

    def set_loss(self, prob: float) -> None:
        if not 0.0 <= prob <= 1.0:
            raise ValueError("loss probability must be in [0, 1]")
        self.loss_prob = prob
        self._refresh_fault_free()

    def set_delay(self, prob: float) -> None:
        if not 0.0 <= prob <= 1.0:
            raise ValueError("delay probability must be in [0, 1]")
        self.delay_prob = prob
        self._refresh_fault_free()

    def _refresh_fault_free(self) -> None:
        # Cached so the zero-fault send path (production steady state,
        # and the bench_channel overhead gate) skips all fault sampling.
        self._fault_free = (
            self.loss_prob == 0.0
            and self.delay_prob == 0.0
            and not self.partitioned
        )

    def partition(self, device: str) -> None:
        self.partitioned.add(device)
        self._fault_free = False

    def heal(self, device: Optional[str] = None) -> List[str]:
        """Heal one partition (or all of them, plus the loss/delay
        weather, when ``device`` is None).  Returns the devices whose
        partitions lifted.  The caller owns reconvergence: run the
        anti-entropy reconciler after healing."""
        if device is not None:
            healed = [device] if device in self.partitioned else []
            self.partitioned.discard(device)
        else:
            healed = sorted(self.partitioned)
            self.partitioned.clear()
            self.loss_prob = 0.0
            self.delay_prob = 0.0
        self._refresh_fault_free()
        self.stats.heals += 1
        return healed

    # -- the data path ---------------------------------------------------------

    def _state(self, device: str) -> _DeviceState:
        state = self._devices.get(device)
        if state is None:
            state = self._devices[device] = _DeviceState()
        return state

    def send(self, device: str, op: str, fn: Callable[[], Any]) -> Any:
        """Stamp, maybe drop, deliver.  Returns ``fn()``'s result on
        delivery; raises :class:`ChannelSendError` when the command was
        lost or the device is partitioned (lossy ops only).  A delayed
        duplicate may additionally be queued for a later :meth:`pump`.
        """
        state = self._devices.get(device)
        if state is None:
            state = self._devices[device] = _DeviceState()
        seq = state.next_seq
        state.next_seq = seq + 1
        stats = self.stats
        stats.sends += 1
        # A direct delivery always passes the fence: its stamp was just
        # allocated, so it is strictly newer than any applied watermark
        # (same epoch -> larger seq; after an epoch bump -> larger
        # epoch).  Only pumped duplicates need the full fence check.
        if self._fault_free:
            state.applied_epoch = self.epoch
            state.applied_seq = seq
            stats.applied += 1
            return fn()
        if op in LOSSY_OPS:
            if device in self.partitioned:
                stats.partition_drops += 1
                raise ChannelSendError(
                    f"{op} seq {seq} to {device}: partitioned"
                )
            if self.loss_prob > 0 and self.rng.random() < self.loss_prob:
                stats.losses += 1
                raise ChannelSendError(
                    f"{op} seq {seq} to {device}: lost in flight"
                )
        state.applied_epoch = self.epoch
        state.applied_seq = seq
        stats.applied += 1
        result = fn()
        if self.delay_prob > 0 and self.rng.random() < self.delay_prob:
            # The network held a copy: it will arrive again later, and
            # the device-side fence must drop it without side effects.
            self._in_flight.append(
                _Command(device, self.epoch, seq, op, fn)
            )
            stats.delayed_dups += 1
        return result

    def _deliver(self, cmd: _Command) -> Any:
        if cmd.epoch < self.epoch:
            # Stamped by a deposed controller incarnation: fenced off,
            # whether or not the device has seen the seq.
            self.stats.fence_rejects += 1
            return None
        state = self._state(cmd.device)
        stamp = (cmd.epoch, cmd.seq)
        if stamp <= (state.applied_epoch, state.applied_seq):
            self.stats.dup_drops += 1
            return None
        state.applied_epoch, state.applied_seq = stamp
        self.stats.applied += 1
        return cmd.fn()

    def pump(self) -> int:
        """Re-deliver every queued duplicate.  Returns the number of
        deliveries attempted; fencing guarantees none of them mutate a
        device (``stats.stale_applied`` would record a violation)."""
        self.stats.pumps += 1
        delivered = 0
        while self._in_flight:
            cmd = self._in_flight.popleft()
            applied_before = self.stats.applied
            self._deliver(cmd)
            if self.stats.applied != applied_before:
                # A duplicate got through the fence: record the
                # violation for the invariant battery instead of hiding
                # the double side-effect.
                self.stats.stale_applied += 1
            delivered += 1
        return delivered

    def purge_device(self, device: str) -> int:
        """A device died (switch wipe, SMux retirement): drop its queued
        duplicates — its replacement boots from empty state and fresh
        programming, and a late duplicate from the previous life must
        not resurrect anything.  The watermark is kept: sequence numbers
        keep growing, so post-recovery commands always pass the fence."""
        before = len(self._in_flight)
        self._in_flight = deque(
            cmd for cmd in self._in_flight if cmd.device != device
        )
        return before - len(self._in_flight)

    def bump_epoch(self) -> int:
        """A new controller incarnation took over (crash recovery).
        Commands stamped by the dead incarnation — queued duplicates or
        anything still in flight — are fenced off from here on."""
        self.epoch += 1
        return self.epoch

    # -- introspection ---------------------------------------------------------

    def queued_dups(self) -> int:
        return len(self._in_flight)

    def device_watermark(self, device: str) -> Tuple[int, int]:
        state = self._state(device)
        return (state.applied_epoch, state.applied_seq)

    def note_convergence(self, seconds: float) -> None:
        self._pending_convergences.append(seconds)

    def drain_convergences(self) -> List[float]:
        drained = self._pending_convergences
        self._pending_convergences = []
        return drained


@dataclass
class OpTicket:
    """One logical programming op in the pending-ops ledger."""

    op_id: int
    device: str
    op: str
    vip: Optional[int] = None
    attempts: int = 0
    state: str = "pending"  # pending | acked | timed_out | rejected


class PendingOpsLedger:
    """Controller-side ack tracking for in-flight programming ops.

    One ticket per logical op (a VIP programming including its port
    rules is one op, however many retries it takes).  A ticket that
    times out puts its device on the :attr:`unreconciled` list — the
    hand-off to the anti-entropy reconciler, which clears it once the
    channel heals and intent converges with the installed state.

    Per-incarnation by design: the ledger dies with its controller, and
    recovery re-derives in-flight intent from the journal's uncommitted
    tail (ledger "replay" is journal roll-forward).
    """

    def __init__(self) -> None:
        self._next_id = 0
        self._pending: Dict[int, OpTicket] = {}
        self.unreconciled: Set[str] = set()
        self.opened = 0
        self.acked = 0
        self.retries = 0
        self.timeouts = 0
        self.rejected = 0

    def open(
        self, device: str, op: str, vip: Optional[int] = None
    ) -> OpTicket:
        ticket = OpTicket(self._next_id, device, op, vip)
        self._next_id += 1
        self._pending[ticket.op_id] = ticket
        self.opened += 1
        return ticket

    def note_retry(self, ticket: OpTicket) -> None:
        self.retries += 1

    def _settle(self, ticket: OpTicket, state: str) -> None:
        ticket.state = state
        self._pending.pop(ticket.op_id, None)

    def ack(self, ticket: OpTicket) -> None:
        self._settle(ticket, "acked")
        self.acked += 1

    def timeout(self, ticket: OpTicket) -> None:
        """Retry budget / deadline exhausted: the op is abandoned, its
        VIP degrades to SMux coverage, and its device awaits
        anti-entropy reconciliation."""
        self._settle(ticket, "timed_out")
        self.timeouts += 1
        self.unreconciled.add(ticket.device)

    def reject(self, ticket: OpTicket) -> None:
        """Deterministic NACK (e.g. table capacity): not retryable, not
        a channel fault — the device is in sync, just full."""
        self._settle(ticket, "rejected")
        self.rejected += 1

    def pending(self) -> List[OpTicket]:
        return [self._pending[k] for k in sorted(self._pending)]

    def mark_reconciled(self, device: Optional[str] = None) -> None:
        if device is None:
            self.unreconciled.clear()
        else:
            self.unreconciled.discard(device)
