"""Fault-injectable control channel (epoch fencing, retry policy,
pending-ops ledger) between the Duet controller and its device fleet."""

from repro.control.channel import (
    LOSSY_OPS,
    ChannelSendError,
    ChannelStats,
    ControlChannel,
    OpTicket,
    PendingOpsLedger,
)
from repro.control.retry import RetryPolicy, RetryPolicyError, RetrySchedule

__all__ = [
    "LOSSY_OPS",
    "ChannelSendError",
    "ChannelStats",
    "ControlChannel",
    "OpTicket",
    "PendingOpsLedger",
    "RetryPolicy",
    "RetryPolicyError",
    "RetrySchedule",
]
