"""Shared retry policy for control-channel programming ops.

Every controller->device programming path retries through one policy:
capped exponential backoff with optional seeded jitter and a per-op
deadline expressed in *modelled* seconds (the repro executes
synchronously; backoff is accounted, not slept).  The policy object is
immutable configuration; :meth:`RetryPolicy.start` mints a single-use
:class:`RetrySchedule` that tracks one op's retry budget.

With ``jitter == 0`` (the default) the schedule is a pure function of
the policy — no RNG is consumed — and reproduces the historical
controller loop bit-for-bit: attempts ``max_attempts``, backoffs
``base * multiplier**k``.  Jitter requires an explicit seeded RNG
(:func:`repro.net.failures.as_rng` coercion): nondeterministic retry
timing is how real fleets avoid thundering herds, but this repro never
draws from an implicit global seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Union

from repro.net.failures import as_rng


class RetryPolicyError(ValueError):
    """Invalid retry-policy configuration or usage."""


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with seeded jitter and an op deadline.

    ``max_attempts``
        Total tries including the first (>= 1).
    ``base_backoff_s``
        Modelled delay before the first retry.
    ``multiplier``
        Growth factor per retry (>= 1).
    ``max_backoff_s``
        Cap applied to each individual backoff before jitter.
    ``jitter``
        Fraction of additive jitter: each backoff becomes
        ``d * (1 + jitter * U[0, 1))``.  Requires an RNG at
        :meth:`start` when nonzero.
    ``deadline_s``
        Per-op budget in modelled seconds; a retry whose backoff would
        push the cumulative delay past the deadline is not taken (the
        op times out instead).  ``None`` disables the deadline.
    """

    max_attempts: int = 3
    base_backoff_s: float = 0.05
    multiplier: float = 2.0
    max_backoff_s: float = 30.0
    jitter: float = 0.0
    deadline_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise RetryPolicyError("need at least one attempt")
        if self.base_backoff_s < 0:
            raise RetryPolicyError("backoff cannot be negative")
        if self.multiplier < 1.0:
            raise RetryPolicyError("multiplier must be >= 1")
        if self.max_backoff_s < self.base_backoff_s:
            raise RetryPolicyError("cap below base backoff")
        if not 0.0 <= self.jitter <= 1.0:
            raise RetryPolicyError("jitter is a fraction in [0, 1]")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise RetryPolicyError("deadline must be positive")

    def start(
        self, rng: Optional[Union[int, random.Random]] = None
    ) -> "RetrySchedule":
        """Mint a fresh schedule for one op.  ``rng`` may be a seeded
        ``random.Random`` or an int seed; it is mandatory when the
        policy jitters (explicit-seed rule of ``net/failures.py``)."""
        if self.jitter > 0 and rng is None:
            raise RetryPolicyError(
                "a jittered policy needs an explicit seeded RNG"
            )
        return RetrySchedule(self, None if rng is None else as_rng(rng))


class RetrySchedule:
    """Mutable per-op view of a :class:`RetryPolicy`.

    Call :meth:`next_backoff` after each failed attempt: it returns the
    modelled delay before the next try, or ``None`` when the budget is
    exhausted (attempts spent, or the deadline would be exceeded —
    distinguish via :attr:`timed_out`).
    """

    def __init__(
        self, policy: RetryPolicy, rng: Optional[random.Random]
    ) -> None:
        self.policy = policy
        self.rng = rng
        self.retries_issued = 0
        self.elapsed_s = 0.0
        self.timed_out = False

    def next_backoff(self) -> Optional[float]:
        p = self.policy
        if self.retries_issued >= p.max_attempts - 1:
            return None
        delay = min(
            p.base_backoff_s * p.multiplier ** self.retries_issued,
            p.max_backoff_s,
        )
        if p.jitter > 0:
            assert self.rng is not None  # enforced by start()
            delay *= 1.0 + p.jitter * self.rng.random()
        if p.deadline_s is not None and self.elapsed_s + delay > p.deadline_s:
            self.timed_out = True
            return None
        self.retries_issued += 1
        self.elapsed_s += delay
        return delay
