"""Host Agent (HA): the per-server piece of the Duet data plane.

As in Ananta (paper S2.1), every server runs a host agent that:

* **decapsulates** incoming IP-in-IP packets and rewrites the destination
  from the VIP to the local DIP before delivery,
* implements **direct server return** (DSR): outgoing reply packets have
  their source rewritten from the DIP back to the VIP and bypass the mux,
* selects the **VM** in virtualized clusters, where the HMux can only
  encapsulate once and targets the host IP (S5.2, Figure 6),
* performs **SNAT** for outgoing connections by choosing a local port whose
  return five-tuple hashes to an HMux ECMP slot that points back at this
  DIP (S5.2),
* **meters traffic** per VIP and reports DIP health to the controller
  (S6, Figure 9).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.dataplane.hashing import five_tuple_hash
from repro.dataplane.packet import FiveTuple, Packet, PacketError
from repro.net.addressing import format_ip


class HostAgentError(Exception):
    """Invalid host agent operation."""


class SnatPortExhausted(HostAgentError):
    """No port in the assigned range hashes to one of our slots; the HA
    must request another range from the Duet controller (S5.2)."""


@dataclass(frozen=True)
class SnatLease:
    """One SNAT'd outbound connection."""

    dip: int
    vip: int
    vip_port: int
    remote_ip: int
    remote_port: int
    protocol: int


@dataclass
class VipMeter:
    """Per-VIP traffic statistics reported to the controller."""

    packets: int = 0
    bytes: int = 0

    def count(self, size_bytes: int) -> None:
        self.packets += 1
        self.bytes += size_bytes


@dataclass(frozen=True)
class SnatConfig:
    """What the controller tells an HA so it can invert the HMux hash.

    ``my_slots`` are the ECMP slot indices of the VIP's HMux group that
    point at this DIP; a return packet must hash into one of them to come
    back here.  ``port_range`` is the disjoint range the controller
    assigned to this DIP (paper: "Duet assigns disjoint port ranges to
    the DIPs").
    """

    vip: int
    n_slots: int
    my_slots: Tuple[int, ...]
    port_range: Tuple[int, int]
    hash_seed: int = 0

    def __post_init__(self) -> None:
        lo, hi = self.port_range
        if not 0 <= lo <= hi <= 0xFFFF:
            raise HostAgentError(f"invalid port range {self.port_range}")
        if not self.my_slots:
            raise HostAgentError("SNAT config needs at least one slot")
        for slot in self.my_slots:
            if not 0 <= slot < self.n_slots:
                raise HostAgentError(
                    f"slot {slot} out of range (n_slots={self.n_slots})"
                )


class HostAgent:
    """The agent running on one physical host."""

    def __init__(self, host_ip: int) -> None:
        self.host_ip = host_ip
        self._dip_to_vip: Dict[int, int] = {}
        self._vip_local_dips: Dict[int, List[int]] = {}
        self._healthy: Set[int] = set()
        self._snat_configs: Dict[int, SnatConfig] = {}  # keyed by DIP
        self._snat_leases: Dict[Tuple[int, int, int, int], SnatLease] = {}
        self._used_ports: Dict[int, Set[int]] = {}  # dip -> ports in use
        self.meters: Dict[int, VipMeter] = {}
        self.hash_seed = 0

    # -- DIP registration ---------------------------------------------------------

    def register_dip(self, dip: int, vip: int) -> None:
        """Attach a DIP (a VM or the host itself) serving ``vip``."""
        if dip in self._dip_to_vip:
            raise HostAgentError(f"DIP {format_ip(dip)} already registered")
        self._dip_to_vip[dip] = vip
        self._vip_local_dips.setdefault(vip, []).append(dip)
        self._healthy.add(dip)

    def unregister_dip(self, dip: int) -> None:
        vip = self._dip_to_vip.pop(dip, None)
        if vip is None:
            raise HostAgentError(f"DIP {format_ip(dip)} not registered")
        self._vip_local_dips[vip].remove(dip)
        if not self._vip_local_dips[vip]:
            del self._vip_local_dips[vip]
        self._healthy.discard(dip)
        self._snat_configs.pop(dip, None)

    def dips(self) -> List[int]:
        return sorted(self._dip_to_vip)

    # -- health -------------------------------------------------------------------

    def set_health(self, dip: int, healthy: bool) -> None:
        if dip not in self._dip_to_vip:
            raise HostAgentError(f"DIP {format_ip(dip)} not registered")
        if healthy:
            self._healthy.add(dip)
        else:
            self._healthy.discard(dip)

    def health_report(self) -> Dict[int, bool]:
        """DIP -> healthy, polled periodically by the controller."""
        return {dip: dip in self._healthy for dip in self._dip_to_vip}

    # -- inbound path ---------------------------------------------------------------

    def receive(self, packet: Packet) -> Packet:
        """Handle an encapsulated packet arriving at the host.

        Strips every encapsulation layer, picks the local DIP (hashing the
        five-tuple when several local VMs serve the VIP, Figure 6), and
        rewrites the destination so the server sees its own address.
        """
        if not packet.is_encapsulated:
            raise PacketError("host agent received a bare packet")
        # The innermost tunnel header carries what the mux aimed at: a
        # DIP address (physical clusters) or this host's own address
        # (virtualized clusters, Figure 6 — the switch cannot target the
        # VM directly).
        encap_target = packet.outer[-1].dst_ip
        inner = packet
        while inner.is_encapsulated:
            inner = inner.decapsulate()

        # SNAT return traffic: match an existing lease first.
        lease = self._snat_leases.get((
            inner.flow.src_ip, inner.flow.src_port,
            inner.flow.dst_ip, inner.flow.dst_port,
        ))
        if lease is not None:
            delivered = inner.rewrite_dst(lease.dip)
            self._meter(lease.vip, packet.wire_bytes)
            return delivered

        vip = inner.flow.dst_ip
        if encap_target in self._dip_to_vip:
            # Physical cluster: the mux addressed the DIP itself.
            if encap_target not in self._healthy:
                raise HostAgentError(
                    f"encap target {format_ip(encap_target)} is unhealthy"
                )
            self._meter(vip, packet.wire_bytes)
            return inner.rewrite_dst(encap_target)
        local = [d for d in self._vip_local_dips.get(vip, []) if d in self._healthy]
        if not local:
            raise HostAgentError(
                f"no healthy local DIP for VIP {format_ip(vip)}"
            )
        if len(local) == 1:
            dip = local[0]
        else:
            # "At the host, the HA selects the DIP by hashing the 5-tuple"
            dip = local[five_tuple_hash(inner.flow, self.hash_seed) % len(local)]
        self._meter(vip, packet.wire_bytes)
        return inner.rewrite_dst(dip)

    # -- outbound path (DSR) -----------------------------------------------------------

    def send(self, packet: Packet) -> Packet:
        """Process an outgoing packet from a local DIP.

        Reply traffic on inbound connections: rewrite source DIP -> VIP
        (direct server return, so only inbound traffic crosses the mux).
        """
        dip = packet.flow.src_ip
        vip = self._dip_to_vip.get(dip)
        if vip is None:
            raise HostAgentError(
                f"outgoing packet from unknown DIP {format_ip(dip)}"
            )
        return packet.rewrite_src(vip)

    # -- SNAT -----------------------------------------------------------------------

    def configure_snat(self, dip: int, config: SnatConfig) -> None:
        if dip not in self._dip_to_vip:
            raise HostAgentError(f"DIP {format_ip(dip)} not registered")
        self._snat_configs[dip] = config
        self._used_ports.setdefault(dip, set())

    def snat_config_of(self, dip: int) -> Optional[SnatConfig]:
        """The config currently pushed for ``dip`` (None if SNAT is not
        set up) — lets the controller's reconciler audit staleness
        without re-pushing."""
        return self._snat_configs.get(dip)

    def open_outbound(
        self, dip: int, remote_ip: int, remote_port: int, protocol: int
    ) -> SnatLease:
        """Establish an outgoing connection from ``dip``.

        Picks a VIP source port such that the *return* five-tuple
        (remote -> VIP) hashes onto an HMux ECMP slot pointing back at
        this DIP — the HA "selects a port such that the hash of the
        5-tuple would correctly match the ECMP table entry on HMux"
        (S5.2).  Raises :class:`SnatPortExhausted` when the assigned
        range has no usable free port.
        """
        config = self._snat_configs.get(dip)
        if config is None:
            raise HostAgentError(f"no SNAT config for DIP {format_ip(dip)}")
        used = self._used_ports[dip]
        lo, hi = config.port_range
        wanted = set(config.my_slots)
        for port in range(lo, hi + 1):
            if port in used:
                continue
            return_flow = FiveTuple(
                src_ip=remote_ip,
                dst_ip=config.vip,
                src_port=remote_port,
                dst_port=port,
                protocol=protocol,
            )
            slot = five_tuple_hash(return_flow, config.hash_seed) % config.n_slots
            if slot in wanted:
                lease = SnatLease(
                    dip=dip,
                    vip=config.vip,
                    vip_port=port,
                    remote_ip=remote_ip,
                    remote_port=remote_port,
                    protocol=protocol,
                )
                used.add(port)
                self._snat_leases[(remote_ip, remote_port, config.vip, port)] = lease
                return lease
        raise SnatPortExhausted(
            f"no free port in {config.port_range} hashes to slots "
            f"{sorted(wanted)} for DIP {format_ip(dip)}"
        )

    def close_outbound(self, lease: SnatLease) -> None:
        key = (lease.remote_ip, lease.remote_port, lease.vip, lease.vip_port)
        if key not in self._snat_leases:
            raise HostAgentError("unknown SNAT lease")
        del self._snat_leases[key]
        self._used_ports[lease.dip].discard(lease.vip_port)

    def snat_translate_outbound(self, packet: Packet) -> Packet:
        """Rewrite an outbound packet on a SNAT'd connection: source
        DIP:port -> VIP:leased-port."""
        for lease in self._snat_leases.values():
            if (
                lease.dip == packet.flow.src_ip
                and lease.remote_ip == packet.flow.dst_ip
                and lease.remote_port == packet.flow.dst_port
                and lease.protocol == packet.flow.protocol
            ):
                return packet.rewrite_src(lease.vip, lease.vip_port)
        raise HostAgentError("no SNAT lease matches outbound packet")

    # -- metering --------------------------------------------------------------------

    def _meter(self, vip: int, size_bytes: int) -> None:
        meter = self.meters.get(vip)
        if meter is None:
            meter = VipMeter()
            self.meters[vip] = meter
        meter.count(size_bytes)

    def traffic_report(self) -> Dict[int, Tuple[int, int]]:
        """VIP -> (packets, bytes) since start; consumed by the
        controller's datacenter-monitoring module (S6)."""
        return {
            vip: (meter.packets, meter.bytes)
            for vip, meter in self.meters.items()
        }
