"""Batched (numpy-vectorized) dataplane fast path.

The scalar muxes (:mod:`repro.dataplane.hmux`, :mod:`repro.dataplane.smux`)
process one :class:`~repro.dataplane.packet.Packet` at a time through
python dictionaries — exactly right for semantics, far too slow to drive
the paper's loads (1.2M pps for hundreds of seconds, Figures 11-20).
This module resolves whole *arrays* of flows at once:

* :class:`FlowBatch` — a struct-of-arrays view of many packets,
* :class:`BatchHMux` — the HMux pipeline (host-table match -> ECMP slot
  selection -> tunnel resolution, plus TIP re-encapsulation and
  port-based ACL rules) over a batch in a handful of numpy operations,
* :class:`BatchSMux` — the SMux path (port pools, VIP-wide pools,
  connection pinning) over a batch.

The engines do not re-implement state: they cache **flattened per-VIP
layouts** (slot -> encap target, the composition of the resilient hash
table with the tunneling table) computed from the live mux objects, and
invalidate those caches via the muxes' ``layout_version`` counters,
which every programming operation (VIP add/remove, resilient DIP
removal, reset) bumps.  A batch engine therefore always forwards exactly
like the mux it wraps — and the differential test suite
(``tests/test_batch_differential.py``) holds it to that, byte for byte.

Packets with two or more encapsulation headers are rare (only transient
TIP hops) and fall back to the scalar path row by row, keeping the
equivalence unconditional.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.dataplane.hashing import five_tuple_hash_batch
from repro.dataplane.hmux import HMux, HMuxAction, HMuxResult
from repro.dataplane.packet import (
    DEFAULT_PACKET_BYTES,
    FiveTuple,
    OuterHeader,
    Packet,
)
from repro.dataplane.smux import SMux

#: Action codes of :class:`BatchHMuxResult.action` (uint8 array).
ACTION_NO_MATCH = 0
ACTION_ENCAPSULATED = 1
ACTION_REENCAPSULATED = 2

_ACTION_TO_ENUM = {
    ACTION_NO_MATCH: HMuxAction.NO_MATCH,
    ACTION_ENCAPSULATED: HMuxAction.ENCAPSULATED,
    ACTION_REENCAPSULATED: HMuxAction.REENCAPSULATED,
}


class BatchError(Exception):
    """Invalid batch construction or lookup."""


# ---------------------------------------------------------------------------
# FlowBatch: struct-of-arrays packets
# ---------------------------------------------------------------------------

@dataclass
class FlowBatch:
    """Many packets as parallel field arrays.

    The five inner-flow fields and the packet size are dense arrays; at
    most one outer IP-in-IP header per row is carried in ``outer_src`` /
    ``outer_dst`` (``-1`` where the packet is bare).  Rows whose source
    packet had two or more outer headers are listed in ``deep`` (row
    index -> original packet) and are routed through the scalar path.
    """

    src_ip: np.ndarray    # uint64
    dst_ip: np.ndarray    # uint64
    src_port: np.ndarray  # uint64
    dst_port: np.ndarray  # uint64
    protocol: np.ndarray  # uint64
    size_bytes: np.ndarray  # int64
    outer_src: np.ndarray   # int64, -1 when bare
    outer_dst: np.ndarray   # int64, -1 when bare
    deep: Tuple[Tuple[int, Packet], ...] = ()

    def __post_init__(self) -> None:
        n = len(self.src_ip)
        for name in ("dst_ip", "src_port", "dst_port", "protocol",
                     "size_bytes", "outer_src", "outer_dst"):
            if len(getattr(self, name)) != n:
                raise BatchError(f"field array {name} length mismatch")

    def __len__(self) -> int:
        return len(self.src_ip)

    @classmethod
    def from_packets(cls, packets: Sequence[Packet]) -> "FlowBatch":
        n = len(packets)
        src_ip = np.empty(n, np.uint64)
        dst_ip = np.empty(n, np.uint64)
        src_port = np.empty(n, np.uint64)
        dst_port = np.empty(n, np.uint64)
        protocol = np.empty(n, np.uint64)
        size_bytes = np.empty(n, np.int64)
        outer_src = np.full(n, -1, np.int64)
        outer_dst = np.full(n, -1, np.int64)
        deep: List[Tuple[int, Packet]] = []
        for i, packet in enumerate(packets):
            flow = packet.flow
            src_ip[i] = flow.src_ip
            dst_ip[i] = flow.dst_ip
            src_port[i] = flow.src_port
            dst_port[i] = flow.dst_port
            protocol[i] = flow.protocol
            size_bytes[i] = packet.size_bytes
            if packet.outer:
                outer_src[i] = packet.outer[0].src_ip
                outer_dst[i] = packet.outer[0].dst_ip
                if packet.encap_depth >= 2:
                    deep.append((i, packet))
        return cls(src_ip, dst_ip, src_port, dst_port, protocol,
                   size_bytes, outer_src, outer_dst, tuple(deep))

    @classmethod
    def from_fields(
        cls,
        src_ip: Iterable[int],
        dst_ip: Iterable[int],
        src_port: Iterable[int],
        dst_port: Iterable[int],
        protocol: Iterable[int],
        size_bytes: int = DEFAULT_PACKET_BYTES,
    ) -> "FlowBatch":
        """Build a batch of bare packets directly from field iterables
        (the zero-copy entry point for generators and benchmarks)."""
        src = np.asarray(src_ip, dtype=np.uint64)
        n = len(src)
        return cls(
            src_ip=src,
            dst_ip=np.asarray(dst_ip, dtype=np.uint64),
            src_port=np.asarray(src_port, dtype=np.uint64),
            dst_port=np.asarray(dst_port, dtype=np.uint64),
            protocol=np.asarray(protocol, dtype=np.uint64),
            size_bytes=np.full(n, size_bytes, np.int64),
            outer_src=np.full(n, -1, np.int64),
            outer_dst=np.full(n, -1, np.int64),
        )

    def flow_at(self, i: int) -> FiveTuple:
        return FiveTuple(
            src_ip=int(self.src_ip[i]),
            dst_ip=int(self.dst_ip[i]),
            src_port=int(self.src_port[i]),
            dst_port=int(self.dst_port[i]),
            protocol=int(self.protocol[i]),
        )

    def packet_at(self, i: int) -> Packet:
        """Reconstruct row ``i`` as a :class:`Packet` (deep rows return
        the original object, untouched)."""
        for index, packet in self.deep:
            if index == i:
                return packet
        outer: Tuple[OuterHeader, ...] = ()
        if self.outer_dst[i] >= 0:
            outer = (OuterHeader(int(self.outer_src[i]),
                                 int(self.outer_dst[i])),)
        return Packet(
            flow=self.flow_at(i),
            size_bytes=int(self.size_bytes[i]),
            outer=outer,
        )

    def hashes(self, seed: int = 0) -> np.ndarray:
        """The shared five-tuple hash of every row (inner flow)."""
        return five_tuple_hash_batch(
            self.src_ip, self.dst_ip, self.src_port, self.dst_port,
            self.protocol, seed,
        )


# ---------------------------------------------------------------------------
# Flattened slot layouts, shared by both engines
# ---------------------------------------------------------------------------

class _LayoutIndex:
    """A family of per-key slot layouts packed for vectorized lookup.

    ``keys`` is sorted; key ``k``'s layout is
    ``slot_targets[base[k] : base[k] + n_slots[k]]`` where element ``s``
    is the encap target a flow hashing to slot ``s`` resolves to.  One
    ``searchsorted`` + two gathers resolve a whole batch.
    """

    __slots__ = ("keys", "vips", "n_slots", "base", "slot_targets")

    def __init__(self, entries: List[Tuple[int, int, List[int]]]) -> None:
        # entries: (key, vip-to-count-against, per-slot targets)
        entries = sorted(entries, key=lambda e: e[0])
        self.keys = np.array([e[0] for e in entries], dtype=np.uint64)
        self.vips = np.array([e[1] for e in entries], dtype=np.uint64)
        self.n_slots = np.array(
            [len(e[2]) for e in entries], dtype=np.uint64,
        )
        lengths = [len(e[2]) for e in entries]
        self.base = np.concatenate(
            ([0], np.cumsum(lengths[:-1]))
        ).astype(np.int64) if entries else np.empty(0, np.int64)
        self.slot_targets = (
            np.concatenate([np.asarray(e[2], dtype=np.int64)
                            for e in entries])
            if entries else np.empty(0, np.int64)
        )

    def lookup(
        self, key_arr: np.ndarray, hashes: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(found mask, per-row target or -1, per-row owning VIP)."""
        n = len(key_arr)
        if self.keys.size == 0:
            return (
                np.zeros(n, bool),
                np.full(n, -1, np.int64),
                np.zeros(n, np.uint64),
            )
        pos = np.searchsorted(self.keys, key_arr)
        # Rows past the last key cannot match; park them on index 0
        # (the equality test below rejects them).
        pos[pos == self.keys.size] = 0
        found = self.keys[pos] == key_arr
        slot = (hashes % self.n_slots[pos]).astype(np.int64)
        target = self.slot_targets[self.base[pos] + slot]
        return found, np.where(found, target, -1), self.vips[pos]


def _acl_key(vip: np.ndarray, port: np.ndarray) -> np.ndarray:
    """(vip, L4 port) packed into one uint64 key."""
    return (np.asarray(vip, np.uint64) << np.uint64(16)) | np.asarray(
        port, np.uint64
    )


# ---------------------------------------------------------------------------
# HMux batch engine
# ---------------------------------------------------------------------------

@dataclass
class BatchHMuxResult:
    """Array-form outcome of one batched HMux pass.

    ``action`` holds the ``ACTION_*`` codes; ``target`` the encap
    destination (``-1`` for no-match).  :meth:`result_at` /
    :meth:`results` lift rows back into the scalar
    :class:`~repro.dataplane.hmux.HMuxResult` (tests and slow consumers
    only — hot paths read the arrays)."""

    batch: FlowBatch
    action: np.ndarray  # uint8 ACTION_* codes
    target: np.ndarray  # int64, -1 when no match
    switch_ip: int
    deep_results: Dict[int, HMuxResult] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.action)

    def result_at(self, i: int) -> HMuxResult:
        if i in self.deep_results:
            return self.deep_results[i]
        code = int(self.action[i])
        if code == ACTION_NO_MATCH:
            return HMuxResult(HMuxAction.NO_MATCH, self.batch.packet_at(i))
        target = int(self.target[i])
        if code == ACTION_ENCAPSULATED:
            out = self.batch.packet_at(i).encapsulate(self.switch_ip, target)
            return HMuxResult(HMuxAction.ENCAPSULATED, out, target)
        inner = self.batch.packet_at(i).decapsulate()
        out = inner.encapsulate(self.switch_ip, target)
        return HMuxResult(HMuxAction.REENCAPSULATED, out, target)

    def results(self) -> List[HMuxResult]:
        return [self.result_at(i) for i in range(len(self))]


class BatchHMux:
    """Vectorized forwarding over a live :class:`HMux`.

    Layout caches are rebuilt lazily whenever the wrapped HMux's
    ``layout_version`` moved — programming operations invalidate, the
    data plane never does.  Counters on the wrapped HMux are updated in
    aggregate, so scalar and batched processing of the same packets
    leave identical counter state.
    """

    def __init__(self, hmux: HMux) -> None:
        self.hmux = hmux
        self._version: Optional[int] = None
        self._host = _LayoutIndex([])
        self._tips = _LayoutIndex([])
        self._acl = _LayoutIndex([])

    # -- cache maintenance -------------------------------------------------

    def _refresh(self) -> None:
        if self._version == self.hmux.layout_version:
            return
        host_entries: List[Tuple[int, int, List[int]]] = []
        tip_entries: List[Tuple[int, int, List[int]]] = []
        for vip in self.hmux.vips():
            layout = self.hmux.slot_targets(vip)
            if self.hmux.is_tip(vip):
                tip_entries.append((vip, vip, layout))
            else:
                host_entries.append((vip, vip, layout))
        acl_entries = [
            (int(_acl_key(np.uint64(vip), np.uint64(port))), vip,
             self.hmux.port_slot_targets(vip, port))
            for vip, port in self.hmux.port_rules()
        ]
        self._host = _LayoutIndex(host_entries)
        self._tips = _LayoutIndex(tip_entries)
        self._acl = _LayoutIndex(acl_entries)
        self._version = self.hmux.layout_version

    # -- data plane --------------------------------------------------------

    def process(self, batch: FlowBatch) -> BatchHMuxResult:
        """Run a whole batch through the pipeline in numpy."""
        self._refresh()
        n = len(batch)
        action = np.zeros(n, np.uint8)
        target = np.full(n, -1, np.int64)
        count_vip = np.zeros(n, np.uint64)
        hashes = batch.hashes(self.hmux.hash_seed)

        vectorized = np.ones(n, bool)
        for i, _packet in batch.deep:
            vectorized[i] = False
        encapsulated = (batch.outer_dst >= 0) & vectorized
        bare = (batch.outer_dst < 0) & vectorized

        # TIP handling (Figure 7): encapsulated rows whose outer dst is a
        # TIP assigned here are decapsulated and re-encapsulated.
        if encapsulated.any():
            found, tgt, vip = self._tips.lookup(
                batch.outer_dst.astype(np.uint64), hashes,
            )
            hit = encapsulated & found
            action[hit] = ACTION_REENCAPSULATED
            target[hit] = tgt[hit]
            count_vip[hit] = vip[hit]

        if bare.any():
            # ACL rules match before the host table (Figure 8).
            acl_found, acl_tgt, acl_vip = self._acl.lookup(
                _acl_key(batch.dst_ip, batch.dst_port), hashes,
            )
            hit = bare & acl_found
            action[hit] = ACTION_ENCAPSULATED
            target[hit] = acl_tgt[hit]
            count_vip[hit] = acl_vip[hit]
            # Host forwarding table (TIP states never match bare packets:
            # they are keyed in the TIP index instead).
            host_found, host_tgt, host_vip = self._host.lookup(
                batch.dst_ip, hashes,
            )
            hit = bare & ~acl_found & host_found
            action[hit] = ACTION_ENCAPSULATED
            target[hit] = host_tgt[hit]
            count_vip[hit] = host_vip[hit]

        # Deep-encapsulation rows ride the scalar path (which also
        # updates counters for them).
        deep_results: Dict[int, HMuxResult] = {}
        for i, packet in batch.deep:
            result = self.hmux.process(packet)
            deep_results[i] = result
            if result.action is HMuxAction.ENCAPSULATED:
                action[i] = ACTION_ENCAPSULATED
                target[i] = result.selected_ip
            elif result.action is HMuxAction.REENCAPSULATED:
                action[i] = ACTION_REENCAPSULATED
                target[i] = result.selected_ip

        # Aggregate counter update for the vectorized rows.
        counters = self.hmux.counters
        hit = vectorized & (action != ACTION_NO_MATCH)
        n_hit = int(np.count_nonzero(hit))
        counters.packets += n_hit
        counters.no_match += int(np.count_nonzero(vectorized) - n_hit)
        if n_hit:
            counters.bytes += int(batch.size_bytes[hit].sum())
            vips, counts = np.unique(count_vip[hit], return_counts=True)
            per_vip = counters.per_vip_packets
            for vip, count in zip(vips.tolist(), counts.tolist()):
                per_vip[vip] = per_vip.get(vip, 0) + count

        return BatchHMuxResult(
            batch=batch,
            action=action,
            target=target,
            switch_ip=self.hmux.switch_ip,
            deep_results=deep_results,
        )


# ---------------------------------------------------------------------------
# SMux batch engine
# ---------------------------------------------------------------------------

@dataclass
class BatchSMuxResult:
    """Array-form outcome of one batched SMux pass: ``dip`` is the
    selected DIP per row (``-1`` where the destination is not a known
    VIP — the scalar path's ``None``)."""

    batch: FlowBatch
    dip: np.ndarray  # int64, -1 when dropped
    smux_ip: int

    def __len__(self) -> int:
        return len(self.dip)

    def packet_at(self, i: int) -> Optional[Packet]:
        if self.dip[i] < 0:
            return None
        return self.batch.packet_at(i).encapsulate(
            self.smux_ip, int(self.dip[i])
        )

    def packets(self) -> List[Optional[Packet]]:
        return [self.packet_at(i) for i in range(len(self))]


class BatchSMux:
    """Vectorized forwarding over a live :class:`SMux`.

    With ``pin_connections=True`` (the default) the engine honours and
    maintains the SMux connection table exactly like the scalar path:
    pinned flows keep their DIP, fresh flows are pinned after selection.
    The pinned-flow check uses a vectorized (src, dst) prefilter so the
    per-flow dictionary lookups only run for rows that can possibly be
    pinned.  ``pin_connections=False`` skips connection state entirely —
    a stateless mode for fluid-scale replays of ephemeral probe traffic
    where affinity is irrelevant (it deviates from scalar semantics and
    is never used by the differential tests).
    """

    def __init__(self, smux: SMux, pin_connections: bool = True) -> None:
        self.smux = smux
        self.pin_connections = pin_connections
        self._version: Optional[int] = None
        self._vips = _LayoutIndex([])
        self._ports = _LayoutIndex([])
        self._pin_version: Optional[int] = None
        self._pin_prefilter = np.empty(0, np.uint64)

    def _refresh(self) -> None:
        if self._version == self.smux.layout_version:
            return
        vip_entries = [
            (vip, vip, self.smux.slot_dips(vip))
            for vip in self.smux.vips()
        ]
        port_entries = [
            (int(_acl_key(np.uint64(vip), np.uint64(port))), vip,
             self.smux.port_slot_dips(vip, port))
            for vip, port in self.smux.port_vips()
        ]
        self._vips = _LayoutIndex(vip_entries)
        self._ports = _LayoutIndex(port_entries)
        self._version = self.smux.layout_version

    def _refresh_pins(self) -> None:
        if self._pin_version == self.smux.conn_version:
            return
        keys = np.fromiter(
            (
                (flow.src_ip << 32) | flow.dst_ip
                for flow in self.smux.connections()
            ),
            dtype=np.uint64,
            count=self.smux.connection_count(),
        )
        keys.sort()
        self._pin_prefilter = keys
        self._pin_version = self.smux.conn_version

    def process(self, batch: FlowBatch) -> BatchSMuxResult:
        """Load-balance a whole batch; mirrors ``SMux.process`` row by
        row (port pools first, then the VIP-wide pool, then drop)."""
        self._refresh()
        n = len(batch)
        hashes = batch.hashes(self.smux.hash_seed)
        port_found, port_dip, _ = self._ports.lookup(
            _acl_key(batch.dst_ip, batch.dst_port), hashes,
        )
        vip_found, vip_dip, _ = self._vips.lookup(batch.dst_ip, hashes)
        matched = port_found | vip_found
        dip = np.where(port_found, port_dip,
                       np.where(vip_found, vip_dip, -1)).astype(np.int64)

        if self.pin_connections:
            self._refresh_pins()
            pinned = np.zeros(n, bool)
            if self._pin_prefilter.size:
                key = (batch.src_ip << np.uint64(32)) | batch.dst_ip
                pos = np.searchsorted(self._pin_prefilter, key)
                pos[pos == self._pin_prefilter.size] = 0
                candidate = matched & (self._pin_prefilter[pos] == key)
                for i in np.nonzero(candidate)[0].tolist():
                    pin = self.smux.pinned_dip(batch.flow_at(i))
                    if pin is not None:
                        dip[i] = pin
                        pinned[i] = True
            for i in np.nonzero(matched & ~pinned)[0].tolist():
                self.smux.pin_connection(batch.flow_at(i), int(dip[i]))

        counters = self.smux.counters
        n_hit = int(np.count_nonzero(matched))
        counters.packets += n_hit
        counters.drops_no_vip += n - n_hit
        if n_hit:
            counters.bytes += int(batch.size_bytes[matched].sum())
            # Port-pool rows attribute to the owning VIP, which is the
            # packet's dst_ip in both pool kinds — same as the scalar path.
            per_vip = counters.per_vip_packets
            vips, counts = np.unique(
                batch.dst_ip[matched], return_counts=True,
            )
            for vip, count in zip(vips.tolist(), counts.tolist()):
                per_vip[vip] = per_vip.get(vip, 0) + count

        return BatchSMuxResult(batch=batch, dip=dip, smux_ip=self.smux.smux_ip)
