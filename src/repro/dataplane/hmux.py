"""HMux: the hardware Mux embedded in a commodity switch (paper S3.1).

The HMux links the three switch tables (:mod:`repro.dataplane.tables`)
exactly as Figure 2 shows: a VIP packet matches the host forwarding table,
which points at an ECMP group; the five-tuple hash selects an entry, which
points into the tunneling table; the packet is IP-in-IP encapsulated
toward that entry's address and forwarded.  Because all of this happens in
the forwarding pipeline, an HMux processes packets at line rate with
microsecond latency — capacity and latency are modelled in
:mod:`repro.sim`, not here.

This module also implements the S5.2 extensions:

* **TIP indirection** for VIPs with more than a tunnel-table's worth of
  DIPs (decap + re-encap at a second switch, Figure 7),
* **port-based load balancing** via ACL rules (Figure 8),
* **WCMP** weights for heterogeneous DIPs,
* **virtualized clusters**: tunnel entries hold host IPs (possibly
  repeated, Figure 6) and the host agent picks the VM.

DIP *addition* to a live VIP is intentionally unsupported here: resilient
hashing only protects removals, so the Duet controller must bounce the VIP
through SMux to add a DIP (S5.2).  :meth:`HMux.add_dip` raises to keep
that invariant honest.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dataplane.hashing import ResilientHashTable
from repro.dataplane.packet import Packet
from repro.dataplane.tables import (
    AclRule,
    AclTable,
    EcmpTable,
    HostForwardingTable,
    TableEntryError,
    TunnelingTable,
)
from repro.net.addressing import format_ip
from repro.net.topology import SwitchTableSpec


class HMuxError(Exception):
    """Invalid HMux programming operation."""


class UnsupportedOperation(HMuxError):
    """Operation the hardware cannot do (the controller must work around
    it, e.g. DIP addition via the SMux bounce)."""


def default_wcmp_slots(
    n_targets: int, weights: Optional[Sequence[float]]
) -> int:
    """The default ECMP-group width: one entry per target, or — with
    WCMP weights — enough entries to express the integer weight ratio.
    HMux and SMux share this default so their slot layouts agree."""
    if weights is None:
        return n_targets
    return max(n_targets, sum(max(1, round(w)) for w in weights))


class HMuxAction(enum.Enum):
    """Outcome of running a packet through the HMux pipeline."""

    ENCAPSULATED = "encapsulated"      # VIP matched, packet tunneled to a DIP
    REENCAPSULATED = "reencapsulated"  # TIP matched: decap + encap (Figure 7)
    NO_MATCH = "no_match"              # not our VIP: normal forwarding


@dataclass(frozen=True)
class HMuxResult:
    action: HMuxAction
    packet: Packet
    selected_ip: Optional[int] = None  # encap target when (re)encapsulated


@dataclass
class _VipState:
    """Bookkeeping for one VIP (or TIP) programmed on this HMux."""

    vip: int
    encap_ips: List[int]            # by tunnel slot order
    tunnel_base: int
    group_id: int
    hash_table: ResilientHashTable  # members are tunnel indices
    is_tip: bool = False
    port: Optional[int] = None      # set for port-based (ACL) entries

    @property
    def n_tunnel_entries(self) -> int:
        return len(self.encap_ips)


@dataclass
class HMuxCounters:
    """Data plane counters, used by tests and the metering pipeline."""

    packets: int = 0
    bytes: int = 0
    no_match: int = 0
    per_vip_packets: Dict[int, int] = field(default_factory=dict)

    def count(self, vip: int, size_bytes: int) -> None:
        self.packets += 1
        self.bytes += size_bytes
        self.per_vip_packets[vip] = self.per_vip_packets.get(vip, 0) + 1


class HMux:
    """The load-balancing data plane of one switch."""

    def __init__(
        self,
        switch_ip: int,
        tables: SwitchTableSpec = SwitchTableSpec(),
        hash_seed: int = 0,
        host_table_reserved: int = 0,
    ) -> None:
        self.switch_ip = switch_ip
        self.hash_seed = hash_seed
        self.host_table = HostForwardingTable(
            tables.host_table, reserved=host_table_reserved
        )
        self.ecmp_table = EcmpTable(tables.ecmp_table)
        self.tunnel_table = TunnelingTable(tables.tunnel_table)
        self.acl_table = AclTable()
        self.counters = HMuxCounters()
        self._tables_spec = tables
        self._host_table_reserved = host_table_reserved
        self._vips: Dict[int, _VipState] = {}
        self._port_vips: Dict[Tuple[int, int], _VipState] = {}
        self._evolved_vips: set = set()
        self._layout_version = 0

    @property
    def layout_version(self) -> int:
        """Monotonic counter bumped by every programming operation that
        changes what the forwarding pipeline would do (VIP add/remove,
        port-rule add/remove, resilient DIP removal, reset).  The batch
        engine (:mod:`repro.dataplane.batch`) keys its per-VIP layout
        caches on this: unchanged version == identical forwarding."""
        return self._layout_version

    def reset(self) -> None:
        """Power-cycle the switch: every table entry and counter is gone.

        Switch ASIC state does not survive a crash, so the agent calls
        this on failure — a recovered switch must come back *empty* and be
        re-programmed from the controller's records (S5.1)."""
        self.host_table = HostForwardingTable(
            self._tables_spec.host_table, reserved=self._host_table_reserved
        )
        self.ecmp_table = EcmpTable(self._tables_spec.ecmp_table)
        self.tunnel_table = TunnelingTable(self._tables_spec.tunnel_table)
        self.acl_table = AclTable()
        self.counters = HMuxCounters()
        self._vips.clear()
        self._port_vips.clear()
        self._evolved_vips.clear()
        self._layout_version += 1

    # -- programming -----------------------------------------------------------

    def program_vip(
        self,
        vip: int,
        encap_ips: Sequence[int],
        weights: Optional[Sequence[float]] = None,
        *,
        is_tip: bool = False,
        n_slots: Optional[int] = None,
    ) -> None:
        """Install a VIP with its encapsulation targets.

        ``encap_ips`` are DIPs in the simple case, host IPs for virtualized
        clusters (repeat an HIP once per VM it hosts, Figure 6), or TIPs
        for large-fanout VIPs (Figure 7).  ``weights`` enables WCMP.
        ``n_slots`` sets the ECMP group width (defaults to one entry per
        encap target; pass more for finer WCMP ratios).
        """
        if vip in self._vips:
            raise HMuxError(f"VIP {format_ip(vip)} already programmed")
        if not encap_ips:
            raise HMuxError(f"VIP {format_ip(vip)} needs at least one target")
        slots = n_slots if n_slots is not None else default_wcmp_slots(
            len(encap_ips), weights
        )
        if slots < len(encap_ips):
            raise HMuxError("n_slots smaller than the number of targets")
        # Order matters: reserve tunnel entries, then ECMP width, then the
        # host route, unwinding on failure so a rejected VIP leaves no
        # residue (the assignment algorithm probes capacity this way).
        tunnel_base = self.tunnel_table.allocate_block(list(encap_ips))
        try:
            group = self.ecmp_table.create_group(tunnel_base, slots)
        except Exception:
            self.tunnel_table.free_block(tunnel_base, len(encap_ips))
            raise
        try:
            self.host_table.install(vip, group.group_id)
        except Exception:
            self.ecmp_table.destroy_group(group.group_id)
            self.tunnel_table.free_block(tunnel_base, len(encap_ips))
            raise
        members = list(range(tunnel_base, tunnel_base + len(encap_ips)))
        hash_table = ResilientHashTable(
            members, n_slots=slots, seed=self.hash_seed,
            weights=list(weights) if weights is not None else None,
        )
        self._vips[vip] = _VipState(
            vip=vip,
            encap_ips=list(encap_ips),
            tunnel_base=tunnel_base,
            group_id=group.group_id,
            hash_table=hash_table,
            is_tip=is_tip,
        )
        self._evolved_vips.discard(vip)
        self._layout_version += 1

    def program_vip_port(
        self,
        vip: int,
        port: int,
        encap_ips: Sequence[int],
        weights: Optional[Sequence[float]] = None,
    ) -> None:
        """Port-based load balancing (S5.2): one DIP set per service port,
        installed as an ACL rule instead of a host route."""
        key = (vip, port)
        if key in self._port_vips:
            raise HMuxError(
                f"VIP {format_ip(vip)}:{port} already programmed"
            )
        if not encap_ips:
            raise HMuxError("port-based VIP needs at least one target")
        tunnel_base = self.tunnel_table.allocate_block(list(encap_ips))
        try:
            group = self.ecmp_table.create_group(tunnel_base, len(encap_ips))
        except Exception:
            self.tunnel_table.free_block(tunnel_base, len(encap_ips))
            raise
        try:
            self.acl_table.install(AclRule(vip, port, group.group_id))
        except Exception:
            self.ecmp_table.destroy_group(group.group_id)
            self.tunnel_table.free_block(tunnel_base, len(encap_ips))
            raise
        members = list(range(tunnel_base, tunnel_base + len(encap_ips)))
        self._port_vips[key] = _VipState(
            vip=vip,
            encap_ips=list(encap_ips),
            tunnel_base=tunnel_base,
            group_id=group.group_id,
            hash_table=ResilientHashTable(
                members, n_slots=len(encap_ips), seed=self.hash_seed,
                weights=list(weights) if weights is not None else None,
            ),
            port=port,
        )
        self._layout_version += 1

    def remove_vip(self, vip: int) -> None:
        """Uninstall a VIP, freeing all three tables' entries."""
        state = self._vips.pop(vip, None)
        if state is None:
            raise HMuxError(f"VIP {format_ip(vip)} not programmed")
        self._evolved_vips.discard(vip)
        self._layout_version += 1
        self._teardown(state, from_acl=False)

    def remove_vip_port(self, vip: int, port: int) -> None:
        state = self._port_vips.pop((vip, port), None)
        if state is None:
            raise HMuxError(f"VIP {format_ip(vip)}:{port} not programmed")
        self._layout_version += 1
        self._teardown(state, from_acl=True)

    def _teardown(self, state: _VipState, from_acl: bool) -> None:
        if from_acl:
            assert state.port is not None
            self.acl_table.remove(state.vip, state.port)
        else:
            self.host_table.remove(state.vip)
        self.ecmp_table.destroy_group(state.group_id)
        # Free whichever tunnel slots are still allocated (removals may
        # have freed some mid-block already).
        for offset in range(state.n_tunnel_entries):
            index = state.tunnel_base + offset
            if index in state.hash_table.members:
                self.tunnel_table.free_block(index, 1)

    def remove_dip(self, vip: int, encap_ip: int) -> int:
        """Remove one target from a live VIP using resilient hashing:
        only flows that hashed to the removed target are remapped (S5.1).
        Returns the number of hash slots rewritten."""
        state = self._require_vip(vip)
        victim = self._find_tunnel_index(state, encap_ip)
        rewritten = state.hash_table.remove_member(victim)
        self.tunnel_table.free_block(victim, 1)
        self._evolved_vips.add(vip)
        self._layout_version += 1
        return rewritten

    def add_dip(self, vip: int, encap_ip: int) -> None:
        """The hardware cannot add a DIP without remapping live flows —
        "Resilient hashing only ensures correct mapping in case of DIP
        removal - not DIP addition" (S5.2).  The controller must bounce
        the VIP through SMux instead (DuetController.add_dip does)."""
        raise UnsupportedOperation(
            "DIP addition on a live HMux VIP would remap existing "
            "connections; withdraw the VIP to SMux, add the DIP, and "
            "re-program the HMux (paper S5.2)"
        )

    # -- data plane -------------------------------------------------------------

    def process(self, packet: Packet) -> HMuxResult:
        """Run one packet through the pipeline."""
        # TIP handling (Figure 7): an encapsulated packet whose outer
        # destination is a TIP assigned here is decapsulated and
        # re-encapsulated toward a DIP from the TIP's table.
        if packet.is_encapsulated:
            state = self._vips.get(packet.routable_dst)
            if state is not None and state.is_tip:
                inner = packet.decapsulate()
                target = self._select(state, inner)
                out = inner.encapsulate(self.switch_ip, target)
                self.counters.count(state.vip, packet.size_bytes)
                return HMuxResult(HMuxAction.REENCAPSULATED, out, target)
            self.counters.no_match += 1
            return HMuxResult(HMuxAction.NO_MATCH, packet)

        # ACL rules match before the host table (Figure 8).
        rule = self.acl_table.lookup(packet.flow.dst_ip, packet.flow.dst_port)
        if rule is not None:
            state = self._port_vips[(rule.dst_ip, rule.dst_port)]
            target = self._select(state, packet)
            out = packet.encapsulate(self.switch_ip, target)
            self.counters.count(state.vip, packet.size_bytes)
            return HMuxResult(HMuxAction.ENCAPSULATED, out, target)

        state = self._vips.get(packet.flow.dst_ip)
        if state is None or state.is_tip:
            self.counters.no_match += 1
            return HMuxResult(HMuxAction.NO_MATCH, packet)
        target = self._select(state, packet)
        out = packet.encapsulate(self.switch_ip, target)
        self.counters.count(state.vip, packet.size_bytes)
        return HMuxResult(HMuxAction.ENCAPSULATED, out, target)

    def _select(self, state: _VipState, packet: Packet) -> int:
        tunnel_index = state.hash_table.select(packet.flow)
        return self.tunnel_table.get(tunnel_index)

    # -- introspection ------------------------------------------------------------

    def has_vip(self, vip: int) -> bool:
        return vip in self._vips

    def has_vip_port(self, vip: int, port: int) -> bool:
        return (vip, port) in self._port_vips

    def has_evolved_layout(self, vip: int) -> bool:
        """True when the VIP's ECMP group has absorbed resilient DIP
        removals since its last fresh program.  An evolved layout keeps
        surviving flows in place (S5.1) but no longer matches a fresh
        build over the same member set, so its flow-to-DIP choices do
        not transfer to any other mux."""
        return vip in self._evolved_vips

    def vips(self) -> List[int]:
        return sorted(self._vips)

    def is_tip(self, vip: int) -> bool:
        """Whether this programmed address is a TIP (Figure 7 indirection)."""
        return self._require_vip(vip).is_tip

    def port_rules(self) -> List[Tuple[int, int]]:
        """(vip, port) keys of the installed ACL rules."""
        return sorted(self._port_vips)

    def slot_targets(self, vip: int) -> List[int]:
        """Per-ECMP-slot encap target of a VIP: the fully resolved
        slot -> tunnel entry -> encap IP composition.  Element ``s`` is
        where a flow hashing to slot ``s`` is tunneled — the flat layout
        the batch engine caches and the differential tests compare
        slot-for-slot against :class:`ResilientHashTable`."""
        state = self._require_vip(vip)
        return [
            self.tunnel_table.get(index)
            for index in state.hash_table.slots()
        ]

    def port_slot_targets(self, vip: int, port: int) -> List[int]:
        """Per-slot encap target of a port-based (ACL) entry."""
        state = self._port_vips.get((vip, port))
        if state is None:
            raise HMuxError(f"VIP {format_ip(vip)}:{port} not programmed")
        return [
            self.tunnel_table.get(index)
            for index in state.hash_table.slots()
        ]

    def dips_of(self, vip: int) -> List[int]:
        """Current encap targets of a VIP (post-removals)."""
        state = self._require_vip(vip)
        return [
            self.tunnel_table.get(index)
            for index in state.hash_table.members
        ]

    def tunnel_entries_used(self) -> int:
        return len(self.tunnel_table)

    def ecmp_entries_used(self) -> int:
        return self.ecmp_table.used_entries

    def host_entries_used(self) -> int:
        return len(self.host_table)

    def _require_vip(self, vip: int) -> _VipState:
        state = self._vips.get(vip)
        if state is None:
            raise HMuxError(f"VIP {format_ip(vip)} not programmed")
        return state

    def _find_tunnel_index(self, state: _VipState, encap_ip: int) -> int:
        for index in state.hash_table.members:
            if self.tunnel_table.get(index) == encap_ip:
                return index
        raise HMuxError(
            f"{format_ip(encap_ip)} is not a target of VIP "
            f"{format_ip(state.vip)}"
        )
