"""Flow hashing: the one function every Duet component must share.

"To ensure that existing connections do not break as a VIP migrates from
HMux to SMux or between HMuxes, all HMuxes and SMuxes use the same hash
function to select DIPs for a given VIP" (paper S3.3.1).  The host agent
additionally inverts this hash for SNAT: it picks a local port such that
the 5-tuple of the *outgoing* connection hashes to the desired ECMP entry
(S5.2).

This module provides:

* :func:`five_tuple_hash` — the shared deterministic hash,
* :class:`EcmpSelector` — hash-indexed selection over a slot table,
* :class:`ResilientHashTable` — Broadcom-style resilient hashing: removing
  a member only remaps the flows of that member; adding a member may remap
  others (which is exactly why Duet routes DIP *additions* through SMux,
  S5.2),
* WCMP weighting (S5.2, heterogeneous servers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.dataplane.packet import FiveTuple

_GOLDEN = 0x9E3779B97F4A7C15
_MASK64 = 0xFFFFFFFFFFFFFFFF


def _mix64(value: int) -> int:
    """SplitMix64 finalizer: cheap, well-distributed, dependency-free."""
    value = (value + _GOLDEN) & _MASK64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (value ^ (value >> 31)) & _MASK64


def five_tuple_hash(flow: FiveTuple, seed: int = 0) -> int:
    """Deterministic 64-bit hash of a flow's five-tuple.

    The same ``seed`` must be configured on every HMux and SMux (and known
    to the host agents for SNAT); per-deployment seeds exist so that hash
    polarization between the ECMP fabric and the mux layer can be broken.
    """
    h = _mix64(seed ^ flow.src_ip)
    h = _mix64(h ^ flow.dst_ip)
    h = _mix64(h ^ (flow.src_port << 16 | flow.dst_port))
    h = _mix64(h ^ flow.protocol)
    return h


def _mix64_batch(value: np.ndarray) -> np.ndarray:
    """SplitMix64 finalizer over a uint64 array; bit-for-bit identical
    to :func:`_mix64` (the wrap-around of uint64 arithmetic is the
    ``& _MASK64`` of the scalar path)."""
    value = value + np.uint64(_GOLDEN)
    value = (value ^ (value >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    value = (value ^ (value >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return value ^ (value >> np.uint64(31))


def five_tuple_hash_batch(
    src_ip: np.ndarray,
    dst_ip: np.ndarray,
    src_port: np.ndarray,
    dst_port: np.ndarray,
    protocol: np.ndarray,
    seed: int = 0,
) -> np.ndarray:
    """Vectorized :func:`five_tuple_hash` over parallel field arrays.

    Returns a uint64 array where element ``i`` equals
    ``five_tuple_hash(FiveTuple(src_ip[i], ...), seed)`` exactly — the
    batched fast path is only allowed to exist because this equivalence
    holds (it is asserted by the differential test suite).
    """
    src_ip = np.asarray(src_ip, dtype=np.uint64)
    dst_ip = np.asarray(dst_ip, dtype=np.uint64)
    src_port = np.asarray(src_port, dtype=np.uint64)
    dst_port = np.asarray(dst_port, dtype=np.uint64)
    protocol = np.asarray(protocol, dtype=np.uint64)
    h = _mix64_batch(np.uint64(seed & _MASK64) ^ src_ip)
    h = _mix64_batch(h ^ dst_ip)
    h = _mix64_batch(h ^ (src_port << np.uint64(16) | dst_port))
    h = _mix64_batch(h ^ protocol)
    return h


class HashingError(Exception):
    """Invalid hashing configuration (no members, bad weights...)."""


class EcmpSelector:
    """Plain ECMP selection: hash modulo the member list.

    This is the classic switch behaviour *without* resilient hashing: any
    membership change can remap unrelated flows.  It models both the ECMP
    spraying of traffic across SMuxes and pre-resilient-hash switches.
    """

    def __init__(self, members: Sequence[int], seed: int = 0) -> None:
        if not members:
            raise HashingError("ECMP group needs at least one member")
        self.members: Tuple[int, ...] = tuple(members)
        self.seed = seed

    def select(self, flow: FiveTuple) -> int:
        index = five_tuple_hash(flow, self.seed) % len(self.members)
        return self.members[index]


class ResilientHashTable:
    """Resilient hashing over a fixed-size slot table.

    The table has ``n_slots`` entries, each holding a member id.  A flow is
    mapped by hashing into a slot.  The resilience property (Broadcom
    "smart hashing", paper S5.1): when a member is *removed*, only the
    slots that pointed at it are rewritten, so flows of surviving members
    are untouched.  When a member is *added*, slots are stolen from
    existing members to restore balance, remapping those flows — matching
    the paper's caveat that resilient hashing protects removals only.

    Weights implement WCMP: a member with weight 2 owns twice the slots.
    """

    def __init__(
        self,
        members: Sequence[int],
        n_slots: int = 256,
        seed: int = 0,
        weights: Optional[Sequence[float]] = None,
    ) -> None:
        if not members:
            raise HashingError("hash table needs at least one member")
        if len(set(members)) != len(members):
            raise HashingError("duplicate members in hash table")
        if n_slots < len(members):
            raise HashingError(
                f"{len(members)} members cannot fit {n_slots} slots"
            )
        self.n_slots = n_slots
        self.seed = seed
        self._weights: Dict[int, float] = {}
        if weights is not None:
            if len(weights) != len(members):
                raise HashingError("weights must match members 1:1")
            if any(w <= 0 for w in weights):
                raise HashingError("weights must be positive")
            self._weights = dict(zip(members, weights))
        else:
            self._weights = {m: 1.0 for m in members}
        self._slots: List[int] = self._initial_layout(list(members))

    # -- layout --------------------------------------------------------------

    def _quota(self, members: Sequence[int]) -> Dict[int, int]:
        """Integer slot quota per member, proportional to weight, summing
        exactly to n_slots (largest-remainder apportionment).

        Every member is guaranteed at least one slot — a 0-slot member
        would silently blackhole its DIP, and real ECMP groups always
        carry one entry per next hop.
        """
        total_weight = sum(self._weights[m] for m in members)
        raw = {
            m: self.n_slots * self._weights[m] / total_weight for m in members
        }
        quota = {m: int(raw[m]) for m in members}
        leftover = self.n_slots - sum(quota.values())
        # Hand the leftover slots to the largest fractional remainders,
        # breaking ties by member id for determinism.
        by_remainder = sorted(
            members, key=lambda m: (-(raw[m] - quota[m]), m)
        )
        for m in by_remainder[:leftover]:
            quota[m] += 1
        # Starvation guard: take from the richest for any zero-quota
        # member (n_slots >= n_members makes this always solvable).
        starving = sorted(m for m in members if quota[m] == 0)
        for m in starving:
            donor = max(members, key=lambda d: (quota[d], -d))
            quota[donor] -= 1
            quota[m] = 1
        return quota

    def _initial_layout(self, members: List[int]) -> List[int]:
        quota = self._quota(members)
        slots: List[int] = []
        # Round-robin interleave so adjacent slots belong to different
        # members (better balance for correlated hashes).
        remaining = dict(quota)
        order = sorted(members)
        while len(slots) < self.n_slots:
            progressed = False
            for m in order:
                if remaining[m] > 0:
                    slots.append(m)
                    remaining[m] -= 1
                    progressed = True
                    if len(slots) == self.n_slots:
                        break
            if not progressed:  # pragma: no cover - quota sums to n_slots
                raise HashingError("slot layout underflow")
        return slots

    # -- queries ---------------------------------------------------------------

    @property
    def members(self) -> Tuple[int, ...]:
        return tuple(sorted(self._weights))

    def weight_of(self, member: int) -> float:
        return self._weights[member]

    def slot_of(self, flow: FiveTuple) -> int:
        return five_tuple_hash(flow, self.seed) % self.n_slots

    def select(self, flow: FiveTuple) -> int:
        """The member serving this flow."""
        return self._slots[self.slot_of(flow)]

    def slot_counts(self) -> Dict[int, int]:
        """How many slots each member currently owns."""
        counts: Dict[int, int] = {m: 0 for m in self._weights}
        for member in self._slots:
            counts[member] += 1
        return counts

    def slots(self) -> Tuple[int, ...]:
        return tuple(self._slots)

    # -- membership changes ------------------------------------------------------

    def remove_member(self, member: int) -> int:
        """Remove a member, rewriting only its own slots (resilient).

        Freed slots are redistributed to the surviving members most below
        their new quota.  Returns the number of slots rewritten.
        """
        if member not in self._weights:
            raise HashingError(f"unknown member: {member}")
        if len(self._weights) == 1:
            raise HashingError("cannot remove the last member")
        del self._weights[member]
        survivors = sorted(self._weights)
        quota = self._quota(survivors)
        counts = {m: 0 for m in survivors}
        for m in self._slots:
            if m in counts:
                counts[m] += 1
        rewritten = 0
        for index, owner in enumerate(self._slots):
            if owner != member:
                continue
            # Give this slot to the survivor with the largest deficit.
            target = min(
                survivors, key=lambda m: (counts[m] - quota[m], m)
            )
            self._slots[index] = target
            counts[target] += 1
            rewritten += 1
        return rewritten

    def add_member(self, member: int, weight: float = 1.0) -> int:
        """Add a member, stealing slots to meet its quota (NOT resilient:
        stolen slots remap existing flows).  Returns slots rewritten."""
        if member in self._weights:
            raise HashingError(f"member already present: {member}")
        if weight <= 0:
            raise HashingError("weights must be positive")
        if len(self._weights) + 1 > self.n_slots:
            raise HashingError("no slot capacity for another member")
        self._weights[member] = weight
        members = sorted(self._weights)
        quota = self._quota(members)
        counts = {m: 0 for m in members}
        for m in self._slots:
            counts[m] += 1
        rewritten = 0
        # Steal from the members most above their quota until the new
        # member reaches its own quota.
        need = quota[member]
        while counts[member] < need:
            donor = max(
                (m for m in members if m != member),
                key=lambda m: (counts[m] - quota[m], m),
            )
            index = self._slots.index(donor)
            self._slots[index] = member
            counts[donor] -= 1
            counts[member] += 1
            rewritten += 1
        return rewritten


def snat_port_for_entry(
    src_ip: int,
    dst_ip: int,
    dst_port: int,
    protocol: int,
    target_slot: int,
    n_slots: int,
    port_range: Tuple[int, int],
    seed: int = 0,
) -> Optional[int]:
    """Find a source port whose five-tuple hashes to ``target_slot``.

    This is the host agent's SNAT trick (paper S5.2): because the HA knows
    the HMux hash function, it chooses the local port of an *outgoing*
    connection so the return traffic's ECMP lookup lands on the tunnel
    entry pointing back at this very DIP.  Scans the assigned port range;
    None when no port in the range works (caller then requests another
    range from the controller).
    """
    lo, hi = port_range
    if not 0 <= lo <= hi <= 0xFFFF:
        raise HashingError(f"invalid port range: {port_range}")
    if not 0 <= target_slot < n_slots:
        raise HashingError(f"slot out of range: {target_slot}/{n_slots}")
    for port in range(lo, hi + 1):
        flow = FiveTuple(src_ip, dst_ip, port, dst_port, protocol)
        if five_tuple_hash(flow, seed) % n_slots == target_slot:
            return port
    return None
