"""Packet model with IP-in-IP encapsulation.

Duet's data plane rests on two primitives that commodity switches already
have (paper S3.1): ECMP traffic splitting and IP-in-IP tunneling.  This
module models the packet itself: an inner IP header carrying the VIP as
destination, wrapped in zero or more outer IP headers added by muxes (one
by an HMux or SMux; two logical levels for the TIP indirection of S5.2,
where the packet is decapsulated and re-encapsulated in flight).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import List, Optional, Tuple

from repro.net.addressing import format_ip

#: IPv4 protocol numbers used in the model.
PROTO_TCP = 6
PROTO_UDP = 17
PROTO_ICMP = 1
PROTO_IPIP = 4

#: Default MTU-sized packet used for pps<->bps conversions (the paper's
#: capacity arithmetic assumes 1,500-byte packets: "300K packets/sec ...
#: translates to 3.6 Gbps for 1,500-byte packets").
DEFAULT_PACKET_BYTES = 1500

IPV4_HEADER_BYTES = 20


class PacketError(Exception):
    """Malformed packet operation (e.g. decapsulating a bare packet)."""


@dataclass(frozen=True)
class FiveTuple:
    """The flow identity hashed by ECMP and connection tables."""

    src_ip: int
    dst_ip: int
    src_port: int
    dst_port: int
    protocol: int

    def __post_init__(self) -> None:
        if not 0 <= self.src_port <= 0xFFFF:
            raise PacketError(f"source port out of range: {self.src_port}")
        if not 0 <= self.dst_port <= 0xFFFF:
            raise PacketError(f"dest port out of range: {self.dst_port}")
        if not 0 <= self.protocol <= 0xFF:
            raise PacketError(f"protocol out of range: {self.protocol}")

    def reversed(self) -> "FiveTuple":
        """The reply direction of the same flow."""
        return FiveTuple(
            src_ip=self.dst_ip,
            dst_ip=self.src_ip,
            src_port=self.dst_port,
            dst_port=self.src_port,
            protocol=self.protocol,
        )

    def __str__(self) -> str:
        return (
            f"{format_ip(self.src_ip)}:{self.src_port}->"
            f"{format_ip(self.dst_ip)}:{self.dst_port}/{self.protocol}"
        )


@dataclass(frozen=True)
class OuterHeader:
    """One level of IP-in-IP encapsulation."""

    src_ip: int
    dst_ip: int


@dataclass(frozen=True)
class Packet:
    """An IPv4 packet: inner five-tuple + stack of outer IP-in-IP headers.

    ``outer`` is ordered outermost-first, matching the on-wire layout; the
    routable destination of the packet is the outermost header's dst (or
    the inner dst when there is no encapsulation).
    """

    flow: FiveTuple
    size_bytes: int = DEFAULT_PACKET_BYTES
    outer: Tuple[OuterHeader, ...] = ()

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise PacketError(f"packet size must be positive: {self.size_bytes}")

    # -- addressing ----------------------------------------------------------

    @property
    def routable_dst(self) -> int:
        """The address the network forwards on (outermost destination)."""
        if self.outer:
            return self.outer[0].dst_ip
        return self.flow.dst_ip

    @property
    def routable_src(self) -> int:
        if self.outer:
            return self.outer[0].src_ip
        return self.flow.src_ip

    @property
    def encap_depth(self) -> int:
        return len(self.outer)

    @property
    def is_encapsulated(self) -> bool:
        return bool(self.outer)

    @property
    def wire_bytes(self) -> int:
        """Size on the wire including encapsulation overhead."""
        return self.size_bytes + IPV4_HEADER_BYTES * len(self.outer)

    # -- encap / decap --------------------------------------------------------

    def encapsulate(self, src_ip: int, dst_ip: int) -> "Packet":
        """Wrap in a new outer IP header (IP-in-IP); outermost-first."""
        header = OuterHeader(src_ip=src_ip, dst_ip=dst_ip)
        return replace(self, outer=(header,) + self.outer)

    def decapsulate(self) -> "Packet":
        """Strip the outermost header; raises when not encapsulated."""
        if not self.outer:
            raise PacketError("cannot decapsulate a bare packet")
        return replace(self, outer=self.outer[1:])

    # -- NAT-style rewrites ----------------------------------------------------

    def with_flow(self, flow: FiveTuple) -> "Packet":
        return replace(self, flow=flow)

    def rewrite_dst(self, dst_ip: int, dst_port: Optional[int] = None) -> "Packet":
        """Rewrite the inner destination (the HA does this before handing
        the packet to the server process)."""
        flow = FiveTuple(
            src_ip=self.flow.src_ip,
            dst_ip=dst_ip,
            src_port=self.flow.src_port,
            dst_port=self.flow.dst_port if dst_port is None else dst_port,
            protocol=self.flow.protocol,
        )
        return replace(self, flow=flow)

    def rewrite_src(self, src_ip: int, src_port: Optional[int] = None) -> "Packet":
        """Rewrite the inner source (DSR: DIP -> VIP on the return path)."""
        flow = FiveTuple(
            src_ip=src_ip,
            dst_ip=self.flow.dst_ip,
            src_port=self.flow.src_port if src_port is None else src_port,
            dst_port=self.flow.dst_port,
            protocol=self.flow.protocol,
        )
        return replace(self, flow=flow)

    def __str__(self) -> str:
        stack = "".join(
            f"[{format_ip(h.src_ip)}->{format_ip(h.dst_ip)}]" for h in self.outer
        )
        return f"{stack}{self.flow}"


def make_tcp_packet(
    src_ip: int, dst_ip: int, src_port: int, dst_port: int,
    size_bytes: int = DEFAULT_PACKET_BYTES,
) -> Packet:
    """Convenience constructor for a bare TCP packet."""
    return Packet(
        flow=FiveTuple(src_ip, dst_ip, src_port, dst_port, PROTO_TCP),
        size_bytes=size_bytes,
    )


def make_udp_packet(
    src_ip: int, dst_ip: int, src_port: int, dst_port: int,
    size_bytes: int = DEFAULT_PACKET_BYTES,
) -> Packet:
    """Convenience constructor for a bare UDP packet."""
    return Packet(
        flow=FiveTuple(src_ip, dst_ip, src_port, dst_port, PROTO_UDP),
        size_bytes=size_bytes,
    )


def pps_to_bps(pps: float, packet_bytes: int = DEFAULT_PACKET_BYTES) -> float:
    """Packets/sec to bits/sec at a given packet size."""
    return pps * packet_bytes * 8


def bps_to_pps(bps: float, packet_bytes: int = DEFAULT_PACKET_BYTES) -> float:
    """Bits/sec to packets/sec at a given packet size."""
    return bps / (packet_bytes * 8)
