"""SMux: the Ananta-style software Mux (paper S2.1), Duet's backstop.

Each SMux stores the VIP-to-DIP mapping for *every* VIP in the DC, selects
a DIP with the shared hash function (so connections survive VIP migration
between HMux and SMux), encapsulates with IP-in-IP, and — unlike the
stateless HMux — keeps **per-connection state**, which is what lets SMuxes
preserve existing connections across DIP additions (S5.2).

Capacity and latency are the SMux's defining limitations (S2.2): ~300K
packets/sec per instance before the CPU saturates, and 200µs-1ms of added
latency.  Those are modelled by :mod:`repro.sim.smux_model`; this module
is the functional data plane with the constants attached.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dataplane.hashing import (
    EcmpSelector,
    ResilientHashTable,
    five_tuple_hash,
)
from repro.dataplane.packet import (
    DEFAULT_PACKET_BYTES,
    FiveTuple,
    Packet,
    pps_to_bps,
)
from repro.net.addressing import format_ip

#: Production SMux saturation point (paper S2.2): the CPU pegs at 300K pps.
SMUX_CAPACITY_PPS = 300_000

#: The same capacity in Gbps at 1,500-byte packets ("which translates to
#: 3.6 Gbps for 1,500-byte packets").
SMUX_CAPACITY_BPS = pps_to_bps(SMUX_CAPACITY_PPS, DEFAULT_PACKET_BYTES)

#: The paper's what-if capacity where the NIC (10G), not the CPU, limits.
SMUX_CAPACITY_10G_BPS = 10e9


class SMuxError(Exception):
    """Invalid SMux operation."""


@dataclass
class SMuxCounters:
    packets: int = 0
    bytes: int = 0
    drops_no_vip: int = 0
    connections: int = 0
    # Per-VIP breakdown, mirroring HMuxCounters: backstop traffic must be
    # visible to the per-VIP metering that feeds the assignment engine.
    per_vip_packets: Dict[int, int] = field(default_factory=dict)

    def count(self, vip: int, size_bytes: int) -> None:
        self.packets += 1
        self.bytes += size_bytes
        self.per_vip_packets[vip] = self.per_vip_packets.get(vip, 0) + 1


@dataclass
class _VipMapping:
    """One VIP's DIP set with the exact slot layout an HMux would build.

    Using :class:`ResilientHashTable` here is what makes the two planes
    agree packet-for-packet: same members, same slot count, same layout,
    same hash (S3.3.1).
    """

    dips: List[int]
    table: "ResilientHashTable"

    @classmethod
    def build(
        cls,
        dips: List[int],
        weights: Optional[List[float]],
        seed: int,
        n_slots: Optional[int] = None,
    ) -> "_VipMapping":
        if n_slots is None:
            from repro.dataplane.hmux import default_wcmp_slots

            n_slots = default_wcmp_slots(len(dips), weights)
        table = ResilientHashTable(
            list(range(len(dips))), n_slots=n_slots, seed=seed,
            weights=weights,
        )
        return cls(dips=dips, table=table)

    def select(self, flow: FiveTuple, seed: int) -> int:
        return self.dips[self.table.select(flow)]


class SMux:
    """One software Mux instance.

    The connection table maps a live flow to its DIP so that membership
    changes never remap established connections — Ananta semantics
    ("SMuxes maintain detailed connection state to ensure that existing
    connections continue to go to the right DIPs", S5.2).
    """

    def __init__(
        self,
        smux_id: int,
        smux_ip: int,
        hash_seed: int = 0,
        capacity_pps: float = SMUX_CAPACITY_PPS,
    ) -> None:
        self.smux_id = smux_id
        self.smux_ip = smux_ip
        self.hash_seed = hash_seed
        self.capacity_pps = capacity_pps
        self.counters = SMuxCounters()
        self._vips: Dict[int, _VipMapping] = {}
        self._port_vips: Dict[Tuple[int, int], _VipMapping] = {}
        self._connections: Dict[FiveTuple, int] = {}
        self._layout_version = 0
        self._conn_version = 0

    @property
    def layout_version(self) -> int:
        """Monotonic counter bumped by every VIP-map change (set/remove,
        port pools included).  The batch engine keys its cached slot
        layouts on this."""
        return self._layout_version

    @property
    def conn_version(self) -> int:
        """Monotonic counter bumped whenever the connection table
        changes (new pin, map-change cleanup, idle expiry) — lets the
        batch engine cache its pinned-flow prefilter."""
        return self._conn_version

    # -- VIP map management (pushed by the controller) ---------------------------

    def set_vip(
        self,
        vip: int,
        dips: Sequence[int],
        weights: Optional[Sequence[float]] = None,
        *,
        n_slots: Optional[int] = None,
    ) -> None:
        """Install or update a VIP's DIP set (full replacement).

        ``n_slots`` must match the width of the HMux ECMP group for this
        VIP when one exists (the controller keeps them in sync) so both
        planes map flows identically.  Existing connections keep their
        pinned DIP as long as it is still in the new set; connections to
        withdrawn DIPs are dropped, like the paper's DIP-failure
        semantics.
        """
        if not dips:
            raise SMuxError(f"VIP {format_ip(vip)} needs at least one DIP")
        if weights is not None and len(weights) != len(dips):
            raise SMuxError("weights must match DIPs 1:1")
        self._vips[vip] = _VipMapping.build(
            list(dips),
            list(weights) if weights is not None else None,
            self.hash_seed,
            n_slots=n_slots,
        )
        self._layout_version += 1
        survivors = set(dips)
        stale = [
            flow for flow, dip in self._connections.items()
            if flow.dst_ip == vip and dip not in survivors
        ]
        for flow in stale:
            del self._connections[flow]
        if stale:
            self._conn_version += 1

    def set_vip_port(
        self,
        vip: int,
        port: int,
        dips: Sequence[int],
        weights: Optional[Sequence[float]] = None,
        *,
        n_slots: Optional[int] = None,
    ) -> None:
        """Port-based mapping (S5.2, Figure 8): one DIP pool per service
        port, matched before the VIP-wide mapping."""
        if not dips:
            raise SMuxError(
                f"VIP {format_ip(vip)}:{port} needs at least one DIP"
            )
        if weights is not None and len(weights) != len(dips):
            raise SMuxError("weights must match DIPs 1:1")
        self._port_vips[(vip, port)] = _VipMapping.build(
            list(dips),
            list(weights) if weights is not None else None,
            self.hash_seed,
            n_slots=n_slots,
        )
        self._layout_version += 1
        survivors = set(dips)
        stale = [
            flow for flow, dip in self._connections.items()
            if flow.dst_ip == vip and flow.dst_port == port
            and dip not in survivors
        ]
        for flow in stale:
            del self._connections[flow]
        if stale:
            self._conn_version += 1

    def remove_vip_port(self, vip: int, port: int) -> None:
        if (vip, port) not in self._port_vips:
            raise SMuxError(f"VIP {format_ip(vip)}:{port} not installed")
        del self._port_vips[(vip, port)]
        self._layout_version += 1
        stale = [
            f for f in self._connections
            if f.dst_ip == vip and f.dst_port == port
        ]
        for flow in stale:
            del self._connections[flow]
        if stale:
            self._conn_version += 1

    def remove_vip(self, vip: int) -> None:
        if vip not in self._vips:
            raise SMuxError(f"VIP {format_ip(vip)} not installed")
        del self._vips[vip]
        for key in [k for k in self._port_vips if k[0] == vip]:
            del self._port_vips[key]
        self._layout_version += 1
        stale = [f for f in self._connections if f.dst_ip == vip]
        for flow in stale:
            del self._connections[flow]
        if stale:
            self._conn_version += 1

    def has_vip(self, vip: int) -> bool:
        return vip in self._vips

    def vips(self) -> List[int]:
        return sorted(self._vips)

    def dips_of(self, vip: int) -> List[int]:
        mapping = self._vips.get(vip)
        if mapping is None:
            raise SMuxError(f"VIP {format_ip(vip)} not installed")
        return list(mapping.dips)

    def port_vips(self) -> List[Tuple[int, int]]:
        """(vip, port) keys of the installed port-specific pools."""
        return sorted(self._port_vips)

    def slot_dips(self, vip: int) -> List[int]:
        """Per-hash-slot DIP of a VIP: element ``s`` is the DIP a fresh
        (unpinned) flow hashing to slot ``s`` selects.  This is the flat
        layout the batch engine caches."""
        mapping = self._vips.get(vip)
        if mapping is None:
            raise SMuxError(f"VIP {format_ip(vip)} not installed")
        return [mapping.dips[m] for m in mapping.table.slots()]

    def port_slot_dips(self, vip: int, port: int) -> List[int]:
        """Per-slot DIP of a port-specific pool."""
        mapping = self._port_vips.get((vip, port))
        if mapping is None:
            raise SMuxError(f"VIP {format_ip(vip)}:{port} not installed")
        return [mapping.dips[m] for m in mapping.table.slots()]

    # -- data plane ----------------------------------------------------------------

    def process(self, packet: Packet) -> Optional[Packet]:
        """Load-balance one packet: select (or recall) the DIP and
        encapsulate.  Returns None when the destination is not a VIP we
        know (counted as a drop)."""
        vip = packet.flow.dst_ip
        # Port-specific pools match first, mirroring the HMux's ACL
        # precedence (Figure 8).
        mapping = self._port_vips.get((vip, packet.flow.dst_port))
        if mapping is None:
            mapping = self._vips.get(vip)
        if mapping is None:
            self.counters.drops_no_vip += 1
            return None
        dip = self._connections.get(packet.flow)
        if dip is None:
            dip = mapping.select(packet.flow, self.hash_seed)
            self._connections[packet.flow] = dip
            self._conn_version += 1
            self.counters.connections += 1
        self.counters.count(vip, packet.size_bytes)
        return packet.encapsulate(self.smux_ip, dip)

    def connection_count(self) -> int:
        return len(self._connections)

    def connections(self) -> List[FiveTuple]:
        """The flows currently pinned in the connection table."""
        return list(self._connections)

    def pinned_dip(self, flow: FiveTuple) -> Optional[int]:
        """The DIP a live connection is pinned to, if any."""
        return self._connections.get(flow)

    def pin_connection(self, flow: FiveTuple, dip: int) -> bool:
        """Record a new connection pin — the exact state transition the
        scalar path performs on a flow's first packet, exposed so the
        batch engine can maintain identical connection state.  Returns
        False (and changes nothing) when the flow is already pinned."""
        if flow in self._connections:
            return False
        self._connections[flow] = dip
        self._conn_version += 1
        self.counters.connections += 1
        return True

    def expire_connection(self, flow: FiveTuple) -> bool:
        """Remove one connection-table entry (idle timeout)."""
        expired = self._connections.pop(flow, None) is not None
        if expired:
            self._conn_version += 1
        return expired
