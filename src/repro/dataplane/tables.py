"""Models of the switch tables Duet re-purposes (paper S3.1, Figure 2).

A packet entering the switch pipeline matches the **host forwarding
table** (exact /32 routes, ~16K entries), which points at a block of
**ECMP table** entries (~4K entries); the entry picked by the five-tuple
hash points into the **tunneling table** (~512 entries) holding the encap
destination.  Port-based load balancing (S5.2, Figure 8) instead matches
an **ACL table** rule on (destination IP, destination port).

Each table enforces its capacity — the scarcity of these entries is the
entire reason Duet needs VIP partitioning and the assignment algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.net.addressing import format_ip


class TableFullError(Exception):
    """A switch table has no free entries."""

    def __init__(self, table: str, capacity: int) -> None:
        super().__init__(f"{table} full ({capacity} entries)")
        self.table = table
        self.capacity = capacity


class TableEntryError(Exception):
    """Invalid table operation (missing entry, duplicate key...)."""


class TunnelingTable:
    """index -> encap destination IP (the outer header target).

    Entries are allocated in contiguous blocks because an ECMP group
    references a [base, base+n) range of tunnel entries.
    """

    def __init__(self, capacity: int = 512) -> None:
        if capacity < 1:
            raise ValueError("tunneling table capacity must be positive")
        self.capacity = capacity
        self._entries: Dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def free_entries(self) -> int:
        return self.capacity - len(self._entries)

    def allocate_block(self, encap_ips: Sequence[int]) -> int:
        """Store ``encap_ips`` in a contiguous free block; returns the base
        index.  Raises :class:`TableFullError` when no block fits."""
        need = len(encap_ips)
        if need == 0:
            raise TableEntryError("cannot allocate an empty tunnel block")
        if need > self.free_entries:
            raise TableFullError("tunneling table", self.capacity)
        base = self._find_gap(need)
        if base is None:
            raise TableFullError("tunneling table", self.capacity)
        for offset, encap_ip in enumerate(encap_ips):
            self._entries[base + offset] = encap_ip
        return base

    def _find_gap(self, need: int) -> Optional[int]:
        run = 0
        for index in range(self.capacity):
            if index in self._entries:
                run = 0
            else:
                run += 1
                if run == need:
                    return index - need + 1
        return None

    def free_block(self, base: int, count: int) -> None:
        for index in range(base, base + count):
            if index not in self._entries:
                raise TableEntryError(f"tunnel entry {index} not allocated")
            del self._entries[index]

    def get(self, index: int) -> int:
        """The encap IP at ``index``."""
        if index not in self._entries:
            raise TableEntryError(f"tunnel entry {index} not allocated")
        return self._entries[index]

    def set(self, index: int, encap_ip: int) -> None:
        """Rewrite an allocated entry in place (resilient-hash slot fix-up)."""
        if index not in self._entries:
            raise TableEntryError(f"tunnel entry {index} not allocated")
        self._entries[index] = encap_ip


@dataclass(frozen=True)
class EcmpGroup:
    """A block of ECMP entries pointing at tunnel-table indices."""

    group_id: int
    tunnel_base: int
    size: int

    def tunnel_index(self, slot: int) -> int:
        if not 0 <= slot < self.size:
            raise TableEntryError(f"ECMP slot out of range: {slot}/{self.size}")
        return self.tunnel_base + slot


class EcmpTable:
    """ECMP groups drawing from a shared pool of ECMP entries (~4K).

    Each group consumes ``size`` entries from the pool; the per-entry
    payload (which tunnel index) lives conceptually in the entries
    themselves, modelled here by the group's contiguous tunnel base.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("ECMP table capacity must be positive")
        self.capacity = capacity
        self._groups: Dict[int, EcmpGroup] = {}
        self._used = 0
        self._next_group_id = 0

    def __len__(self) -> int:
        return len(self._groups)

    @property
    def used_entries(self) -> int:
        return self._used

    @property
    def free_entries(self) -> int:
        return self.capacity - self._used

    def create_group(self, tunnel_base: int, size: int) -> EcmpGroup:
        if size < 1:
            raise TableEntryError("ECMP group needs at least one entry")
        if size > self.free_entries:
            raise TableFullError("ECMP table", self.capacity)
        group = EcmpGroup(self._next_group_id, tunnel_base, size)
        self._groups[group.group_id] = group
        self._used += size
        self._next_group_id += 1
        return group

    def destroy_group(self, group_id: int) -> None:
        group = self._groups.pop(group_id, None)
        if group is None:
            raise TableEntryError(f"unknown ECMP group: {group_id}")
        self._used -= group.size

    def group(self, group_id: int) -> EcmpGroup:
        if group_id not in self._groups:
            raise TableEntryError(f"unknown ECMP group: {group_id}")
        return self._groups[group_id]


class HostForwardingTable:
    """Exact-match /32 routes: destination IP -> ECMP group id (~16K).

    "The host table is mostly empty, because it is used only for routing
    within a rack" (S3.1) — the reproduction exposes a ``reserved``
    count standing in for those rack-local routes.
    """

    def __init__(self, capacity: int = 16 * 1024, reserved: int = 0) -> None:
        if capacity < 1:
            raise ValueError("host table capacity must be positive")
        if not 0 <= reserved <= capacity:
            raise ValueError("reserved entries exceed capacity")
        self.capacity = capacity
        self.reserved = reserved
        self._routes: Dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._routes)

    @property
    def free_entries(self) -> int:
        return self.capacity - self.reserved - len(self._routes)

    def install(self, dst_ip: int, group_id: int) -> None:
        if dst_ip in self._routes:
            raise TableEntryError(
                f"duplicate host route for {format_ip(dst_ip)}"
            )
        if self.free_entries <= 0:
            raise TableFullError("host forwarding table", self.capacity)
        self._routes[dst_ip] = group_id

    def remove(self, dst_ip: int) -> int:
        if dst_ip not in self._routes:
            raise TableEntryError(f"no host route for {format_ip(dst_ip)}")
        return self._routes.pop(dst_ip)

    def lookup(self, dst_ip: int) -> Optional[int]:
        return self._routes.get(dst_ip)

    def routes(self) -> Iterator[Tuple[int, int]]:
        return iter(sorted(self._routes.items()))


@dataclass(frozen=True)
class AclRule:
    """Match on (destination IP, destination L4 port) -> ECMP group.

    Models the port-based load balancing of S5.2/Figure 8: one VIP with a
    different DIP set per service port.
    """

    dst_ip: int
    dst_port: int
    group_id: int


class AclTable:
    """ACL rules table; matched before the host table falls through.

    "Typically the number of ACL rules supported is larger than the
    tunneling table size, so it is not a bottleneck" (S5.2) — the default
    capacity reflects that.
    """

    def __init__(self, capacity: int = 2048) -> None:
        self.capacity = capacity
        self._rules: Dict[Tuple[int, int], AclRule] = {}

    def __len__(self) -> int:
        return len(self._rules)

    @property
    def free_entries(self) -> int:
        return self.capacity - len(self._rules)

    def install(self, rule: AclRule) -> None:
        key = (rule.dst_ip, rule.dst_port)
        if key in self._rules:
            raise TableEntryError(
                f"duplicate ACL rule for {format_ip(rule.dst_ip)}:{rule.dst_port}"
            )
        if self.free_entries <= 0:
            raise TableFullError("ACL table", self.capacity)
        self._rules[key] = rule

    def remove(self, dst_ip: int, dst_port: int) -> AclRule:
        key = (dst_ip, dst_port)
        if key not in self._rules:
            raise TableEntryError(
                f"no ACL rule for {format_ip(dst_ip)}:{dst_port}"
            )
        return self._rules.pop(key)

    def lookup(self, dst_ip: int, dst_port: int) -> Optional[AclRule]:
        return self._rules.get((dst_ip, dst_port))
