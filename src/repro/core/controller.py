"""The Duet controller and switch agents (paper S6, Figure 9).

The controller is "the heart of Duet": it monitors the datacenter
(topology, traffic, DIP health), runs the assignment engine (S4), and the
assignment updater pushes VIP-DIP rules to switch agents (which program
the ECMP/tunneling tables and fire BGP route updates) and to SMuxes
(which announce the covering aggregates as backstop).

This module wires the full functional system at object level: a
:class:`DuetController` owns the route table, one :class:`SwitchAgent`
(with a real :class:`~repro.dataplane.hmux.HMux`) per switch, the SMux
fleet, and per-server :class:`~repro.dataplane.hostagent.HostAgent`\\ s —
so integration tests and examples can push actual packets end-to-end
through exactly the paper's mechanisms: LPM preferring HMux /32 routes,
SMux fallback on withdrawal, the DIP-addition bounce through SMux, and
resilient-hash DIP removal.

Control-plane *timing* (convergence delays, FIB update latency) is
modelled by :mod:`repro.sim`; operations here take effect immediately.
"""

from __future__ import annotations

import random
from contextlib import contextmanager
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.control import (
    ChannelSendError,
    ControlChannel,
    PendingOpsLedger,
    RetryPolicy,
)
from repro.core.assignment import (
    Assignment,
    AssignmentConfig,
    GreedyAssigner,
)
from repro.core.migration import (
    MigrationPlan,
    StepKind,
    StickyMigrator,
    diff_assignments,
)
from repro.dataplane.hmux import HMux, HMuxError
from repro.dataplane.hostagent import HostAgent
from repro.dataplane.packet import Packet
from repro.dataplane.smux import SMux
from repro.dataplane.tables import TableEntryError
from repro.net.addressing import Prefix, format_ip
from repro.net.bgp import MuxKind, MuxRef, VipRouteTable
from repro.net.failures import (
    FailureScenario,
    FaultModel,
    isolated_switches,
)
from repro.net.topology import Topology
from repro.obs.tracing import maybe_span, span_attrs, trace_event
from repro.workload.vips import (
    SMUX_AGGREGATES,
    SMUX_POOL,
    Dip,
    Vip,
    VipPopulation,
    host_address,
    switch_loopback,
)


class ControllerError(Exception):
    """Invalid controller operation."""


class SwitchProgrammingError(ControllerError):
    """A switch-agent programming RPC failed transiently — a device-side
    fault injected by a :class:`~repro.net.failures.FaultModel`, or a
    command lost/partitioned on the
    :class:`~repro.control.ControlChannel`.  The controller retries
    with backoff and ultimately degrades the VIP to SMux-only."""


#: Seed salts deriving the per-deployment channel RNG and the retry
#: jitter RNG from ``hash_seed``, so distinct deployments (and distinct
#: chaos seeds) see distinct fault streams without any implicit seeding.
CHANNEL_SEED_SALT = 0xC4A77E1
RETRY_RNG_SALT = 0x2E7721


class SimulatedCrash(Exception):
    """The controller process died at an injected crash point.

    Deliberately *not* a :class:`ControllerError`: nothing inside the
    controller may catch it — it must unwind through the op so the
    journal keeps the uncommitted record that recovery rolls forward.
    """


@dataclass
class ProgrammingStats:
    """Observability counters for the assignment updater's RPC path."""

    attempts: int = 0
    retries: int = 0               # attempts beyond the first per program
    transient_faults: int = 0
    degraded: int = 0              # retry budget exhausted -> SMux-only
    skipped_dead_switch: int = 0   # plan step targeted a failed switch
    backoff_s: float = 0.0         # cumulative modelled backoff
    unwinds: int = 0               # partial-VIP teardowns after a fault
    reconcile_rounds: int = 0      # anti-entropy rounds run post-recovery
    reconcile_repairs: int = 0     # drift repairs those rounds made
    op_timeouts: int = 0           # ops whose retry deadline expired


class SwitchAgent:
    """The per-switch agent: programs the HMux and announces routes (S6).

    "On every VIP change, the switch agent fires routing updates over
    BGP" — here, synchronously against the shared route table.  An
    optional :class:`~repro.net.failures.FaultModel` injects transient
    RPC failures into the programming ops (never the withdrawals: a
    failed withdrawal would strand a route, which BGP itself prevents —
    the neighbours withdraw on session loss).
    """

    def __init__(
        self,
        switch_index: int,
        hmux: HMux,
        route_table: VipRouteTable,
        fault_model: Optional[FaultModel] = None,
        channel: Optional[ControlChannel] = None,
    ) -> None:
        self.switch_index = switch_index
        self.hmux = hmux
        self.route_table = route_table
        self.mux_ref = MuxRef.hmux(switch_index)
        self.fault_model = fault_model
        # The control channel this agent is programmed over; None means
        # direct in-process calls (bare agents in unit tests/benchmarks).
        self.channel = channel
        self.device_id = f"switch:{switch_index}"
        # Route-announce versions captured at announce time, passed back
        # on withdraw so a stale (reordered) withdraw cannot erase a
        # newer announcement (see VipRouteTable.withdraw).
        self._announce_versions: Dict[int, Optional[int]] = {}
        # Set by DuetController.attach_tracer; every hook is a no-op
        # while this stays None.
        self.tracer = None

    def _check_fault(self, op: str, vip: int) -> None:
        if self.fault_model is not None and self.fault_model.attempt(
            op, self.switch_index, vip
        ):
            raise SwitchProgrammingError(
                f"transient fault: {op} of VIP {format_ip(vip)} on "
                f"switch {self.switch_index}"
            )

    def _send(self, op: str, fn):
        """Deliver one device mutation over the control channel (or
        directly when no channel is attached).  Channel loss/partition
        surfaces as :class:`SwitchProgrammingError` so the controller's
        retry/degrade path treats it like any transient RPC fault."""
        if self.channel is None:
            return fn()
        try:
            return self.channel.send(self.device_id, op, fn)
        except ChannelSendError as error:
            raise SwitchProgrammingError(str(error)) from error

    def add_vip(
        self,
        vip: int,
        encap_ips: Sequence[int],
        weights: Optional[Sequence[float]] = None,
    ) -> None:
        """Program the tables, then announce the /32 (make-before-break).

        Idempotent under duplicate delivery: re-applying with the same
        encap targets leaves the tables, counters, and layout version
        untouched (the announce is a no-op when the route exists)."""
        with maybe_span(
            self.tracer, "hmux.program",
            switch=self.switch_index, vip=format_ip(vip),
        ):
            def apply() -> None:
                self._check_fault("program_vip", vip)
                if not (
                    self.hmux.has_vip(vip)
                    and sorted(self.hmux.dips_of(vip)) == sorted(encap_ips)
                ):
                    self.hmux.program_vip(vip, encap_ips, weights)
                trace_event(
                    self.tracer, "bgp.announce",
                    vip=format_ip(vip), mux=str(self.mux_ref),
                )
                prefix = Prefix.host(vip)
                self.route_table.announce(prefix, self.mux_ref)
                self._announce_versions[vip] = (
                    self.route_table.announce_version(prefix, self.mux_ref)
                )

            self._send("program_vip", apply)

    def remove_vip(self, vip: int) -> None:
        """Withdraw the /32 first (traffic falls to SMux), then free the
        tables — the stepping-stone order of S4.2.  Idempotent: removing
        an absent VIP is a no-op, and the withdraw carries the announce
        version so it can never erase a newer re-announcement."""
        with maybe_span(
            self.tracer, "hmux.remove",
            switch=self.switch_index, vip=format_ip(vip),
        ):
            def apply() -> None:
                trace_event(
                    self.tracer, "bgp.withdraw",
                    vip=format_ip(vip), mux=str(self.mux_ref),
                )
                version = self._announce_versions.pop(vip, None)
                self.route_table.withdraw(
                    Prefix.host(vip), self.mux_ref, version=version
                )
                if self.hmux.has_vip(vip):
                    self.hmux.remove_vip(vip)

            self._send("withdraw_vip", apply)

    def add_vip_port_rules(
        self,
        vip: int,
        port_pools: Sequence[Tuple[int, Sequence[int]]],
    ) -> None:
        """Install the per-port ACL pools alongside the VIP (Figure 8).
        Each port rule is its own command (and its own fault point);
        re-delivery of an installed rule is a no-op."""
        for port, pool in port_pools:
            def apply(port: int = port, pool=pool) -> None:
                self._check_fault("program_vip_port", vip)
                if not self.hmux.has_vip_port(vip, port):
                    self.hmux.program_vip_port(vip, port, list(pool))

            self._send("program_vip_port", apply)

    def remove_vip_port_rules(
        self,
        vip: int,
        ports: Sequence[int],
    ) -> None:
        def apply() -> None:
            for port in ports:
                if self.hmux.has_vip_port(vip, port):
                    self.hmux.remove_vip_port(vip, port)

        self._send("withdraw_vip_port", apply)

    def remove_dip(self, vip: int, encap_ip: int) -> int:
        """Idempotent DIP removal: an already-removed (or never-present)
        encap target remaps zero slots instead of raising."""
        def apply() -> int:
            if (
                not self.hmux.has_vip(vip)
                or encap_ip not in self.hmux.dips_of(vip)
            ):
                return 0
            return self.hmux.remove_dip(vip, encap_ip)

        return self._send("remove_dip", apply)

    def fail(self) -> int:
        """Switch death: all announcements disappear via BGP withdrawals
        from the neighbours (S5.1), and the ASIC tables are wiped — state
        really is lost with the switch, so a later recovery starts from
        an empty HMux.  Queued duplicate deliveries die with it: the
        replacement must not see ghosts of the previous life.  Returns
        the number of routes withdrawn."""
        withdrawn = self.route_table.withdraw_all(self.mux_ref)
        self._announce_versions.clear()
        trace_event(
            self.tracer, "bgp.withdraw_all",
            mux=str(self.mux_ref), routes=withdrawn,
        )
        self.hmux.reset()
        if self.channel is not None:
            self.channel.purge_device(self.device_id)
        return withdrawn


@dataclass
class VipRecord:
    """Controller-side state for one VIP."""

    vip: Vip
    dips: List[Dip]
    assigned_switch: Optional[int] = None  # None: SMux-only

    @property
    def addr(self) -> int:
        return self.vip.addr

    def dip_addrs(self) -> List[int]:
        return [d.addr for d in self.dips]

    def encap_targets(self, virtualized: bool) -> List[int]:
        """What the muxes encapsulate toward: DIP addresses on physical
        clusters, host addresses (one entry per VM, Figure 6) when the
        cluster is virtualized and switches cannot double-encapsulate."""
        if virtualized:
            return [host_address(d.server_id) for d in self.dips]
        return self.dip_addrs()

    def encap_weights(self) -> Optional[List[float]]:
        """WCMP weights for heterogeneous pools (S5.2); None when all
        DIPs are equal."""
        weights = [d.weight for d in self.dips]
        if all(w == weights[0] for w in weights):
            return None
        return weights


class DuetController:
    """The central controller plus the materialized data plane."""

    def __init__(
        self,
        topology: Topology,
        population: VipPopulation,
        *,
        n_smuxes: int = 2,
        config: AssignmentConfig = AssignmentConfig(),
        hash_seed: int = 0,
        virtualized: bool = False,
        fault_model: Optional[FaultModel] = None,
        max_program_attempts: int = 3,
        retry_backoff_s: float = 0.05,
        channel: Optional[ControlChannel] = None,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        if n_smuxes < 1:
            raise ControllerError("need at least one SMux")
        if max_program_attempts < 1:
            raise ControllerError("need at least one programming attempt")
        self.topology = topology
        self.population = population
        self.config = config
        self.hash_seed = hash_seed
        self.virtualized = virtualized
        self.route_table = VipRouteTable()
        self.assignment: Optional[Assignment] = None
        self.max_program_attempts = max_program_attempts
        self.retry_backoff_s = retry_backoff_s
        # Control-channel plumbing (see repro.control): every device
        # mutation below — switch agents, SMuxes, host agents — is
        # delivered as an epoch-fenced command.  The channel belongs to
        # the deployment (it survives controller crashes with the
        # dataplane); the ledger and retry RNG are per-incarnation.
        self.channel = channel if channel is not None else ControlChannel(
            seed=hash_seed ^ CHANNEL_SEED_SALT
        )
        self.ledger = PendingOpsLedger()
        self.retry_policy = (
            retry_policy if retry_policy is not None
            else RetryPolicy(
                max_attempts=max_program_attempts,
                base_backoff_s=retry_backoff_s,
            )
        )
        self._retry_rng = random.Random(hash_seed ^ RETRY_RNG_SALT)
        self.programming_stats = ProgrammingStats()
        self._fault_model = fault_model
        # Durability plumbing (see repro.durability): no journal until
        # attach_journal, ops nest (cut_link -> fail_switch) so only the
        # outermost journals, and the crash hook simulates process death
        # at op-internal fault points.
        self._journal = None
        self._journal_depth = 0
        self._snapshot_interval = 64
        self._crash_hook = None
        # Observability plumbing (see repro.obs): a tracer wraps every
        # outermost mutating op in a span, a tap samples forwarded flows.
        # Both stay None — zero overhead — until attached.
        self._tracer = None
        self._tap = None

        self.switch_agents: Dict[int, SwitchAgent] = {
            s.index: SwitchAgent(
                s.index,
                HMux(
                    switch_ip=switch_loopback(s.index),
                    tables=s.tables,
                    hash_seed=hash_seed,
                ),
                self.route_table,
                fault_model=fault_model,
                channel=self.channel,
            )
            for s in topology.switches
        }
        self.smuxes: List[SMux] = [
            SMux(i, SMUX_POOL.network + i, hash_seed=hash_seed)
            for i in range(n_smuxes)
        ]
        self._next_smux_id = n_smuxes
        self.host_agents: Dict[int, HostAgent] = {}
        self._dip_to_server: Dict[int, int] = {}
        self._records: Dict[int, VipRecord] = {}
        self._failed_switches: Set[int] = set()
        self._failed_links: Set[int] = set()
        self._snat_managers: Dict[int, object] = {}
        #: VIPs the assignment wanted on an HMux but that are being served
        #: by the SMux backstop instead (programming ultimately failed or
        #: the target switch was dead) — the overflow set of S3.3.2.
        self.degraded_vips: Set[int] = set()

        for vip in population:
            self._register_vip(vip)
        self._announce_smux_aggregates()

    # -- control channel ---------------------------------------------------------

    def send_command(self, device: str, op: str, fn):
        """Deliver one management-plane mutation (SMux / host-agent
        programming) as an epoch-fenced command over the control
        channel.  These ops ride the reliable management fabric — only
        the switch programming ops are subject to injected loss and
        partitions (see :data:`repro.control.LOSSY_OPS`) — but every
        delivery is sequenced and fenced, so duplicates are harmless."""
        return self.channel.send(device, op, fn)

    def _push_vip_to_smux(self, smux: SMux, record: "VipRecord") -> None:
        self.send_command(
            f"smux:{smux.smux_id}",
            "smux_set_vip",
            lambda: smux.set_vip(
                record.addr,
                record.encap_targets(self.virtualized),
                record.encap_weights(),
            ),
        )

    # -- bootstrap --------------------------------------------------------------

    def _register_vip(self, vip: Vip) -> None:
        if vip.port_pools and self.virtualized:
            raise ControllerError(
                "port-based pools are not supported on virtualized "
                "clusters (the ACL pools address DIPs directly)"
            )
        record = VipRecord(vip=vip, dips=list(vip.dips))
        self._records[vip.addr] = record
        for dip in vip.dips:
            self._attach_dip(vip.addr, dip)
        for smux in self.smuxes:
            self._push_vip_to_smux(smux, record)
            for port, pool in vip.port_pools:
                self.send_command(
                    f"smux:{smux.smux_id}",
                    "smux_set_vip_port",
                    lambda smux=smux, port=port, pool=pool: smux.set_vip_port(
                        vip.addr, port, list(pool)
                    ),
                )

    def _attach_dip(self, vip_addr: int, dip: Dip) -> None:
        agent = self.host_agents.get(dip.server_id)
        if agent is None:
            agent = HostAgent(host_address(dip.server_id))
            agent.hash_seed = self.hash_seed
            self.host_agents[dip.server_id] = agent
        self.send_command(
            f"host:{dip.server_id}",
            "host_register_dip",
            lambda: agent.register_dip(dip.addr, vip_addr),
        )
        self._dip_to_server[dip.addr] = dip.server_id

    def _announce_smux_aggregates(self) -> None:
        """"Each SMux announces all the VIPs" via aggregate prefixes, so
        LPM prefers any live HMux /32 (S3.3.1)."""
        for smux in self.smuxes:
            ref = MuxRef.smux(smux.smux_id)
            for aggregate in SMUX_AGGREGATES:
                self.route_table.announce(aggregate, ref)

    # -- durability (write-ahead journal + crash recovery) ------------------------

    @property
    def journal(self):
        return self._journal

    def attach_journal(self, journal, *, snapshot_interval: Optional[int] = None) -> None:
        """Start journaling every mutating op to ``journal``.

        Writes the meta record (everything needed to cold-restore:
        topology params, assignment config, seeds and retry knobs) if
        the journal has none, then an immediate snapshot of the current
        intent — so the journal is sufficient from the moment it is
        attached, and a post-recovery attach absorbs the replayed tail.
        """
        from repro.durability.recovery import snapshot_state
        from repro.workload.serialization import params_to_dict

        if snapshot_interval is not None:
            if snapshot_interval < 1:
                raise ControllerError("snapshot interval must be positive")
            self._snapshot_interval = snapshot_interval
        self._journal = journal
        if journal.meta is None:
            journal.set_meta({
                "topology": params_to_dict(self.topology.params),
                "config": asdict(self.config),
                "hash_seed": self.hash_seed,
                "virtualized": self.virtualized,
                "max_program_attempts": self.max_program_attempts,
                "retry_backoff_s": self.retry_backoff_s,
                "retry_policy": asdict(self.retry_policy),
                "snapshot_interval": self._snapshot_interval,
            })
        journal.write_snapshot(snapshot_state(self), force=True)

    def checkpoint(self) -> None:
        """Snapshot the full intent into the journal, truncating the log."""
        if self._journal is None:
            return
        from repro.durability.recovery import snapshot_state

        self._journal.write_snapshot(snapshot_state(self))

    def _maybe_snapshot(self) -> None:
        if (
            self._journal is not None
            and self._journal.ops_since_snapshot >= self._snapshot_interval
        ):
            self.checkpoint()

    @contextmanager
    def _journal_op(self, op: str, params: Dict[str, Any]) -> Iterator[Dict[str, Any]]:
        """Write-ahead wrap for one mutating op.

        The intent record lands *before* any side effect; the commit
        record (with the yielded effects dict) lands after the op
        completes.  An exception — above all :class:`SimulatedCrash` —
        skips the commit, leaving the op for recovery to roll forward.
        Nested ops (``cut_link`` promoting ``fail_switch``) journal only
        at the outermost level: replay mirrors the nesting.
        """
        effects: Dict[str, Any] = {}
        if self._journal_depth > 0:
            # Nested op: neither journaled nor given its own root span
            # (it runs inside the outer op's span, so any switch-agent
            # spans it opens still land in the right causal tree).
            self._journal_depth += 1
            try:
                yield effects
            finally:
                self._journal_depth -= 1
            return
        with maybe_span(self._tracer, f"op:{op}", **span_attrs(params)):
            if self._journal is None:
                self._journal_depth += 1
                try:
                    yield effects
                finally:
                    self._journal_depth -= 1
                return
            seq = self._journal.append(op, params)
            trace_event(self._tracer, "journal.append", op=op, seq=seq)
            self._journal_depth += 1
            try:
                yield effects
            finally:
                self._journal_depth -= 1
            self._journal.commit(seq, effects or None)
            trace_event(self._tracer, "journal.commit", op=op, seq=seq)
            self._maybe_snapshot()

    # -- observability (tracing + packet tap) -------------------------------------

    @property
    def tracer(self):
        return self._tracer

    @property
    def tap(self):
        return self._tap

    def attach_tracer(self, tracer) -> None:
        """Trace every outermost mutating op (and the switch agents'
        program/announce/withdraw steps) into ``tracer``; pass None to
        detach."""
        self._tracer = tracer
        for agent in self.switch_agents.values():
            agent.tracer = tracer

    def attach_tap(self, tap) -> None:
        """Record hop-by-hop paths of sampled :meth:`forward` packets
        into ``tap`` (a :class:`repro.obs.tracing.PacketTap`); None
        detaches."""
        self._tap = tap

    def set_crash_hook(self, hook) -> None:
        """Install a callable fired at op-internal crash points; when it
        returns truthy the controller dies there (:class:`SimulatedCrash`).
        The chaos engine uses this to kill the controller *inside*
        ``_execute_plan`` / ``add_dip``, not just between ops."""
        self._crash_hook = hook

    def _crash_point(self, label: str) -> None:
        if self._crash_hook is not None and self._crash_hook(label):
            raise SimulatedCrash(label)

    @classmethod
    def restore(
        cls,
        journal,
        *,
        dataplane=None,
        topology: Optional[Topology] = None,
        fault_model: Optional[FaultModel] = None,
    ) -> "DuetController":
        """Rebuild a controller from its journal (see
        :func:`repro.durability.recovery.restore_controller`).  Run the
        :class:`~repro.durability.reconcile.AntiEntropyReconciler` on the
        result before serving."""
        from repro.durability.recovery import restore_controller

        return restore_controller(
            journal,
            dataplane=dataplane,
            topology=topology,
            fault_model=fault_model,
        )

    def stats_snapshot(self) -> Dict[str, float]:
        """One immutable view of every observability counter: the RPC
        path, the reconciler, and the journal.  Values only ever grow
        over a controller incarnation's lifetime."""
        s = self.programming_stats
        snap: Dict[str, float] = {
            "attempts": s.attempts,
            "retries": s.retries,
            "transient_faults": s.transient_faults,
            "degraded": s.degraded,
            "skipped_dead_switch": s.skipped_dead_switch,
            "backoff_s": s.backoff_s,
            "unwinds": s.unwinds,
            "reconcile_rounds": s.reconcile_rounds,
            "reconcile_repairs": s.reconcile_repairs,
            "op_timeouts": s.op_timeouts,
            "journal_ops": 0,
            "journal_snapshots": 0,
        }
        if self._journal is not None:
            snap["journal_ops"] = self._journal.ops_appended
            snap["journal_snapshots"] = self._journal.snapshots_written
        return snap

    # -- assignment lifecycle ------------------------------------------------------

    def run_initial_assignment(self) -> Assignment:
        """Compute and install the first VIP-switch assignment."""
        assigner = GreedyAssigner(self.topology, self.config)
        assignment = assigner.assign(self.population.demands())
        self._install_assignment(assignment)
        return assignment

    def apply_assignment(self, new: Assignment) -> MigrationPlan:
        """Migrate from the current assignment to ``new`` (two-phase,
        through the SMux stepping stone)."""
        plan = diff_assignments(self.assignment, new)
        self._execute_plan(plan, new)
        return plan

    def _install_assignment(self, assignment: Assignment) -> None:
        plan = diff_assignments(self.assignment, assignment)
        self._execute_plan(plan, assignment)

    def _execute_plan(self, plan: MigrationPlan, new: Assignment) -> None:
        # All three entry points (apply_assignment, initial install,
        # rebalance) journal here, where the target and plan are fully
        # materialized: demands and assigner heuristics never need to be
        # re-run on replay.  Params capture the PRE-execution target; the
        # degraded reconciliation below is re-derived from the effects.
        params = {
            "target": {
                "map": [[vid, sw] for vid, sw in new.vip_to_switch.items()],
                "unassigned": list(new.unassigned),
            },
            "plan": [
                [step.kind.value, step.vip_id, step.switch_index]
                for step in plan.steps
            ],
        }
        with self._journal_op("apply_assignment", params) as effects:
            effects["degraded_ids"] = self._execute_plan_steps(plan, new)

    def _execute_plan_steps(self, plan: MigrationPlan, new: Assignment) -> List[int]:
        vips_by_id = {v.vip_id: v for v in self.population}
        degraded_ids: List[int] = []
        for step in plan.steps:
            vip = vips_by_id.get(step.vip_id)
            if vip is None:
                continue
            self._crash_point(f"plan:{step.kind.value}:{step.vip_id}")
            record = self._records[vip.addr]
            agent = self.switch_agents[step.switch_index]
            if step.kind is StepKind.WITHDRAW:
                if agent.hmux.has_vip(vip.addr):
                    if vip.port_pools:
                        agent.remove_vip_port_rules(
                            vip.addr, [port for port, _ in vip.port_pools]
                        )
                    agent.remove_vip(vip.addr)
                record.assigned_switch = None
            else:
                if step.switch_index in self._failed_switches:
                    # An arbitrary Assignment (or a failure racing the
                    # plan) must never program a dead switch and
                    # re-announce its routes: the VIP stays on the SMux
                    # backstop until a rebalance re-homes it.
                    self.programming_stats.skipped_dead_switch += 1
                    self._degrade(record)
                    degraded_ids.append(step.vip_id)
                    continue
                if self._program_vip_with_retry(
                    record, vip, step.switch_index
                ):
                    record.assigned_switch = step.switch_index
                    self.degraded_vips.discard(vip.addr)
                else:
                    self._degrade(record)
                    degraded_ids.append(step.vip_id)
        # Reconcile the stored assignment with what actually landed, so
        # the next sticky rebalance retries degraded VIPs instead of
        # believing they are already placed.
        for vip_id in degraded_ids:
            new.vip_to_switch.pop(vip_id, None)
            if vip_id not in new.unassigned:
                new.unassigned.append(vip_id)
        self.assignment = new
        return degraded_ids

    def _degrade_and_reconcile(self, record: VipRecord) -> None:
        """Degrade a VIP outside plan execution: mark it SMux-only and
        drop it from the stored assignment so the next rebalance retries
        the placement."""
        self._degrade(record)
        if self.assignment is not None:
            vip_id = record.vip.vip_id
            self.assignment.vip_to_switch.pop(vip_id, None)
            if vip_id not in self.assignment.unassigned:
                self.assignment.unassigned.append(vip_id)

    def _degrade(self, record: VipRecord) -> None:
        """Leave a VIP SMux-only (the overflow path of S3.3.2): the SMux
        aggregates already cover it, so service continues — degraded, not
        down."""
        record.assigned_switch = None
        if record.addr not in self.degraded_vips:
            self.degraded_vips.add(record.addr)
            self.programming_stats.degraded += 1

    def _program_vip_with_retry(
        self, record: VipRecord, vip: Vip, switch_index: int
    ) -> bool:
        """Program + announce a VIP on a switch with bounded retry and
        exponential backoff; True on success.

        Transient faults (:class:`SwitchProgrammingError`) are retried;
        capacity exhaustion (:class:`~repro.dataplane.tables.TableEntryError`)
        is deterministic, so it fails fast.  Either way a False return
        leaves the switch clean: a partially-programmed VIP is torn down
        before reporting failure.
        """
        agent = self.switch_agents[switch_index]
        stats = self.programming_stats
        ticket = self.ledger.open(
            agent.device_id, "program_vip", vip=record.addr
        )
        schedule = self.retry_policy.start(self._retry_rng)
        while True:
            stats.attempts += 1
            ticket.attempts += 1
            self._crash_point(f"program:{vip.vip_id}:{switch_index}")
            try:
                agent.add_vip(
                    record.addr,
                    record.encap_targets(self.virtualized),
                    record.encap_weights(),
                )
                if vip.port_pools:
                    agent.add_vip_port_rules(record.addr, vip.port_pools)
                self.ledger.ack(ticket)
                return True
            except SwitchProgrammingError:
                stats.transient_faults += 1
                self._unwind_partial_vip(agent, vip)
                delay = schedule.next_backoff()
                if delay is None:
                    # Retry budget / deadline spent: abandon the op,
                    # degrade to SMux coverage (the caller's job), and
                    # hand the device to the anti-entropy reconciler.
                    stats.op_timeouts += 1
                    self.ledger.timeout(ticket)
                    return False
                stats.retries += 1
                self.ledger.note_retry(ticket)
                stats.backoff_s += delay
            except TableEntryError:
                # Deterministic capacity NACK, not a channel fault:
                # fail fast, no retry.
                self._unwind_partial_vip(agent, vip)
                self.ledger.reject(ticket)
                return False

    def _unwind_partial_vip(self, agent: SwitchAgent, vip: Vip) -> None:
        """Remove whatever slice of a VIP landed before a programming
        fault, so retries (and the capacity invariants) see a clean
        switch."""
        self.programming_stats.unwinds += 1
        installed = [
            port for port, _ in vip.port_pools
            if agent.hmux.has_vip_port(vip.addr, port)
        ]
        if installed:
            agent.remove_vip_port_rules(vip.addr, installed)
        if agent.hmux.has_vip(vip.addr):
            agent.remove_vip(vip.addr)

    # -- VIP lifecycle (S5.2) ---------------------------------------------------------

    def add_vip(self, vip: Vip) -> None:
        """"A new VIP is first added to SMuxes, and then the migration
        algorithm decides the right destination." """
        if vip.addr in self._records:
            raise ControllerError(f"VIP {format_ip(vip.addr)} already exists")
        if vip.port_pools and self.virtualized:
            # _register_vip rejects this too, but validation must precede
            # the journal record: a rejected op is never an intent.
            raise ControllerError(
                "port-based pools are not supported on virtualized "
                "clusters (the ACL pools address DIPs directly)"
            )
        from repro.durability.recovery import vip_to_dict

        with self._journal_op("add_vip", {"vip": vip_to_dict(vip)}):
            self._register_vip(vip)
            self.population.add(vip)

    def remove_vip(self, vip_addr: int) -> None:
        """Remove from its HMux (if any) and from all SMuxes."""
        record = self._records.get(vip_addr)
        if record is None:
            raise ControllerError(f"VIP {format_ip(vip_addr)} unknown")
        with self._journal_op("remove_vip", {"vip": vip_addr}):
            self._remove_vip_effects(record)

    def _remove_vip_effects(self, record: VipRecord) -> None:
        vip_addr = record.addr
        del self._records[vip_addr]
        if record.assigned_switch is not None:
            self.switch_agents[record.assigned_switch].remove_vip(vip_addr)
        for smux in self.smuxes:
            if smux.has_vip(vip_addr):
                self.send_command(
                    f"smux:{smux.smux_id}",
                    "smux_remove_vip",
                    lambda smux=smux: smux.remove_vip(vip_addr),
                )
        for dip in record.dips:
            agent = self.host_agents[dip.server_id]
            self.send_command(
                f"host:{dip.server_id}",
                "host_unregister_dip",
                lambda agent=agent, dip=dip: agent.unregister_dip(dip.addr),
            )
            del self._dip_to_server[dip.addr]
        self.population.remove(vip_addr)
        self.degraded_vips.discard(vip_addr)
        self._snat_managers.pop(vip_addr, None)

    def add_dip(self, vip_addr: int, dip: Dip) -> None:
        """DIP addition with the SMux bounce (S5.2): resilient hashing
        cannot protect additions, so the VIP is withdrawn to SMux, the
        DIP set updated, then the VIP is re-programmed on its HMux."""
        record = self._require(vip_addr)
        switch = record.assigned_switch
        params = {
            "vip": vip_addr,
            "dip": {
                "addr": dip.addr,
                "server_id": dip.server_id,
                "weight": dip.weight,
            },
            "switch": switch,
        }
        with self._journal_op("add_dip", params) as effects:
            if switch is not None:
                # Step 1: withdraw -> SMuxes take over with connection state.
                self._crash_point("add_dip:withdraw")
                self.switch_agents[switch].remove_vip(vip_addr)
                record.assigned_switch = None
            # Step 2: add the DIP everywhere.
            self._crash_point("add_dip:update")
            record.dips.append(dip)
            self._attach_dip(vip_addr, dip)
            for smux in self.smuxes:
                self._push_vip_to_smux(smux, record)
            # Step 3: move the VIP back to its HMux (through the same guarded
            # retry path as plan execution: a dead or unprogrammable switch
            # leaves the VIP on the SMux backstop instead of raising).
            if switch is not None:
                self._crash_point("add_dip:reprogram")
                if switch in self._failed_switches:
                    self.programming_stats.skipped_dead_switch += 1
                    self._degrade_and_reconcile(record)
                elif self._program_vip_with_retry(record, record.vip, switch):
                    record.assigned_switch = switch
                    self.degraded_vips.discard(vip_addr)
                else:
                    self._degrade_and_reconcile(record)
            effects["assigned"] = record.assigned_switch

    def migrate_vip(self, vip_addr: int, to_switch: int) -> Optional[int]:
        """Move one VIP to a specific switch through the SMux stepping
        stone (the S4.2 migration, as a single operator-invocable op):
        withdraw from the current HMux (traffic falls to the SMux
        aggregates with connection state intact), then program + announce
        on the target.  A degraded/SMux-only VIP migrates too — the
        withdraw phase is simply empty.

        Returns where the VIP actually landed (``to_switch``, or None
        when programming failed and the VIP stayed on the backstop).
        """
        record = self._require(vip_addr)
        if to_switch not in self.switch_agents:
            raise ControllerError(f"unknown switch {to_switch}")
        if to_switch in self._failed_switches:
            raise ControllerError(
                f"cannot migrate {format_ip(vip_addr)} to failed "
                f"switch {to_switch}"
            )
        from_switch = record.assigned_switch
        if from_switch == to_switch:
            return from_switch
        vip = record.vip
        tracer = self._tracer
        params = {"vip": vip_addr, "from": from_switch, "to": to_switch}
        with self._journal_op("migrate_vip", params) as effects:
            if from_switch is not None:
                with maybe_span(
                    tracer, "migrate.withdraw", switch=from_switch,
                ):
                    self._crash_point("migrate:withdraw")
                    agent = self.switch_agents[from_switch]
                    if agent.hmux.has_vip(vip_addr):
                        if vip.port_pools:
                            agent.remove_vip_port_rules(
                                vip_addr,
                                [port for port, _ in vip.port_pools],
                            )
                        agent.remove_vip(vip_addr)
                    record.assigned_switch = None
            # Stepping stone: between withdraw and reprogram the SMux
            # aggregates carry the VIP (S4.2) — record which mux.
            with maybe_span(
                tracer, "migrate.smux_transit",
                backstop=str(self.route_table.resolve(vip_addr, 0)),
            ):
                self._crash_point("migrate:transit")
            with maybe_span(tracer, "migrate.reprogram", switch=to_switch):
                self._crash_point("migrate:reprogram")
                if to_switch in self._failed_switches:
                    # Unreachable from the front door (validated above)
                    # but kept for replay: the switch may have failed
                    # between journal append and roll-forward.
                    self.programming_stats.skipped_dead_switch += 1
                    self._degrade_and_reconcile(record)
                elif self._program_vip_with_retry(record, vip, to_switch):
                    record.assigned_switch = to_switch
                    self.degraded_vips.discard(vip_addr)
                    if self.assignment is not None:
                        vip_id = vip.vip_id
                        self.assignment.vip_to_switch[vip_id] = to_switch
                        if vip_id in self.assignment.unassigned:
                            self.assignment.unassigned.remove(vip_id)
                else:
                    self._degrade_and_reconcile(record)
            effects["assigned"] = record.assigned_switch
        return record.assigned_switch

    def remove_dip(self, vip_addr: int, dip_addr: int) -> None:
        """DIP removal / failure (S5.1-S5.2): resilient hashing on the
        HMux keeps other connections intact; SMuxes drop only the dead
        DIP's connections."""
        record = self._require(vip_addr)
        matching = [d for d in record.dips if d.addr == dip_addr]
        if not matching:
            raise ControllerError(
                f"{format_ip(dip_addr)} is not a DIP of {format_ip(vip_addr)}"
            )
        if len(record.dips) == 1:
            raise ControllerError(
                f"cannot remove the last DIP of {format_ip(vip_addr)}"
            )
        dip = matching[0]
        with self._journal_op(
            "remove_dip", {"vip": vip_addr, "dip": dip_addr}
        ):
            record.dips.remove(dip)
            if record.assigned_switch is not None:
                target = (
                    host_address(dip.server_id) if self.virtualized
                    else dip.addr
                )
                self.switch_agents[record.assigned_switch].remove_dip(
                    vip_addr, target
                )
            for smux in self.smuxes:
                self._push_vip_to_smux(smux, record)
            agent = self.host_agents[dip.server_id]
            self.send_command(
                f"host:{dip.server_id}",
                "host_unregister_dip",
                lambda: agent.unregister_dip(dip.addr),
            )
            del self._dip_to_server[dip.addr]

    def dip_failure(self, vip_addr: int, dip_addr: int) -> None:
        """"The Duet controller monitors DIP health and removes failed
        DIP from the set of DIPs for the corresponding VIP." """
        self.remove_dip(vip_addr, dip_addr)

    # -- failures -------------------------------------------------------------------

    def fail_switch(self, switch_index: int) -> List[int]:
        """An HMux dies: its routes are withdrawn and its VIPs fall back
        to the SMuxes (converged state).  Returns the affected VIPs."""
        if switch_index in self._failed_switches:
            return []
        with self._journal_op("fail_switch", {"switch": switch_index}):
            self._failed_switches.add(switch_index)
            agent = self.switch_agents[switch_index]
            affected = agent.hmux.vips()
            agent.fail()
            for vip_addr in affected:
                record = self._records[vip_addr]
                record.assigned_switch = None
                # Reconcile the stored assignment too: the sticky rebalance
                # diffs against it, and a mapping to the dead switch would
                # make the displaced VIP look already-placed — it would
                # never be re-programmed after the switch recovers.
                if self.assignment is not None:
                    vip_id = record.vip.vip_id
                    self.assignment.vip_to_switch.pop(vip_id, None)
                    if vip_id not in self.assignment.unassigned:
                        self.assignment.unassigned.append(vip_id)
        return affected

    def recover_switch(self, switch_index: int) -> None:
        """A failed switch comes back (S5.1 recovery): it boots with an
        empty ASIC and announces nothing, so recovery is invisible to
        traffic.  Its displaced VIPs return via the sticky rebalance path
        (S4.2) — call :meth:`rebalance` to re-home them."""
        if switch_index not in self._failed_switches:
            raise ControllerError(
                f"switch {switch_index} is not failed"
            )
        remaining = self._failed_switches - {switch_index}
        scenario = FailureScenario(
            name="recovery-check",
            failed_switches=frozenset(remaining),
            failed_links=frozenset(self._failed_links),
        )
        if switch_index in isolated_switches(self.topology, scenario):
            raise ControllerError(
                f"switch {switch_index} is still isolated by failed "
                "links; restore connectivity first"
            )
        agent = self.switch_agents[switch_index]
        if agent.hmux.vips() or self.route_table.announced_by(agent.mux_ref):
            raise ControllerError(
                f"switch {switch_index} recovered with residual state"
            )
        with self._journal_op("recover_switch", {"switch": switch_index}):
            self._failed_switches.discard(switch_index)

    def fail_smux(self, smux_id: int) -> None:
        """"SMux failure ... Switches detect SMux failure through BGP,
        and use ECMP to direct traffic to other SMuxes." """
        alive = [s for s in self.smuxes if s.smux_id != smux_id]
        if len(alive) == len(self.smuxes):
            raise ControllerError(f"unknown SMux {smux_id}")
        if not alive:
            raise ControllerError("cannot fail the last SMux")
        with self._journal_op("fail_smux", {"smux": smux_id}):
            ref = MuxRef.smux(smux_id)
            self.route_table.withdraw_all(ref)
            self.smuxes = alive
            # Late duplicates addressed to the dead instance must not
            # be mistaken for commands to a future one (ids are never
            # reused, but the queue should not hold corpses either).
            self.channel.purge_device(f"smux:{smux_id}")

    def add_smux(self) -> SMux:
        """Scale out the backstop: stand up a new SMux, program *every*
        VIP into it, then announce the aggregates (make-before-break —
        a route must never attract traffic the mux cannot serve).
        SMux ids are never reused: lingering state on a crashed instance
        must not be mistaken for the new one."""
        smux_id = self._next_smux_id
        with self._journal_op("add_smux", {"smux_id": smux_id}):
            smux = SMux(
                smux_id,
                SMUX_POOL.network + smux_id,
                hash_seed=self.hash_seed,
            )
            self._next_smux_id = smux_id + 1
            for addr in sorted(self._records):
                record = self._records[addr]
                self._push_vip_to_smux(smux, record)
                for port, pool in record.vip.port_pools:
                    self.send_command(
                        f"smux:{smux.smux_id}",
                        "smux_set_vip_port",
                        lambda port=port, pool=pool: smux.set_vip_port(
                            record.addr, port, list(pool)
                        ),
                    )
            self.smuxes.append(smux)
            ref = MuxRef.smux(smux.smux_id)
            for aggregate in SMUX_AGGREGATES:
                self.route_table.announce(aggregate, ref)
        return smux

    def cut_link(self, link_index: int, *, bidirectional: bool = True) -> List[int]:
        """Cut a cable (both directions by default).  VIP routing itself
        is link-agnostic at this abstraction, but "a link failure [that]
        isolates a switch" is treated as a switch failure (S5.1): any
        switch the cut disconnects from every live core is failed, and
        the affected VIPs fall to the SMuxes.  Returns the switches
        promoted to failed."""
        link = self.topology.links[link_index]
        with self._journal_op(
            "cut_link", {"link": link_index, "bidirectional": bidirectional}
        ):
            self._failed_links.add(link_index)
            if bidirectional:
                self._failed_links.add(
                    self.topology.link_between(link.dst, link.src).index
                )
            scenario = FailureScenario(
                name="link-cut",
                failed_switches=frozenset(self._failed_switches),
                failed_links=frozenset(self._failed_links),
            )
            promoted = sorted(isolated_switches(self.topology, scenario))
            for switch_index in promoted:
                self.fail_switch(switch_index)
        return promoted

    def restore_link(self, link_index: int, *, bidirectional: bool = True) -> None:
        """Repair a cut cable.  Switches that were failed-by-isolation
        stay failed until :meth:`recover_switch` — physical connectivity
        returning does not mean the switch rejoined BGP."""
        link = self.topology.links[link_index]
        with self._journal_op(
            "restore_link",
            {"link": link_index, "bidirectional": bidirectional},
        ):
            self._failed_links.discard(link_index)
            if bidirectional:
                self._failed_links.discard(
                    self.topology.link_between(link.dst, link.src).index
                )

    # -- end-to-end forwarding (for tests/examples) ------------------------------------

    def forward(self, packet: Packet) -> Tuple[Packet, MuxRef]:
        """Emulate the fabric: resolve the VIP via LPM, run the packet
        through the selected mux, deliver through the host agent.

        Returns (packet as the server sees it, the mux that handled it).
        """
        from repro.dataplane.hashing import five_tuple_hash
        from repro.obs.tracing import PacketTap

        tap_record = None if self._tap is None else self._tap.begin(packet.flow)
        flow_hash = five_tuple_hash(packet.flow, self.hash_seed ^ 0xECC)
        mux = self.route_table.resolve(packet.flow.dst_ip, flow_hash)
        PacketTap.hop(tap_record, "route.resolve", mux=str(mux))
        if mux.kind is MuxKind.HMUX:
            result = self.switch_agents[mux.ident].hmux.process(packet)
            encapped = result.packet
            if not encapped.is_encapsulated:
                raise ControllerError(
                    f"HMux {mux.ident} had no entry for "
                    f"{format_ip(packet.flow.dst_ip)}"
                )
        else:
            smux = next(
                s for s in self.smuxes if s.smux_id == mux.ident
            )
            maybe = smux.process(packet)
            if maybe is None:
                raise ControllerError(
                    f"SMux {mux.ident} dropped packet for "
                    f"{format_ip(packet.flow.dst_ip)}"
                )
            encapped = maybe
        target = encapped.outer[0].dst_ip
        PacketTap.hop(
            tap_record,
            "hmux.encap" if mux.kind is MuxKind.HMUX else "smux.encap",
            mux=str(mux), target=format_ip(target),
        )
        if self.virtualized:
            from repro.workload.vips import HOST_POOL

            if not HOST_POOL.contains(target):
                raise ControllerError(
                    "virtualized cluster produced a non-host encap target"
                )
            server = target - HOST_POOL.network
        else:
            server = self._dip_to_server[target]
        delivered = self.host_agents[server].receive(encapped)
        PacketTap.hop(tap_record, "host.decap", server=server)
        return delivered, mux

    def rebalance(
        self,
        demands: Optional[List] = None,
        *,
        delta: Optional[float] = None,
    ) -> MigrationPlan:
        """Periodic sticky re-assignment (S4.2): "From time to time, Duet
        needs to re-calculate the VIP assignment to see if it can handle
        more VIP traffic through HMux and/or reduce the MRU."

        Uses the latest measured/configured demands, excludes failed
        switches from the candidate set, and executes the two-phase
        migration through the SMux stepping stone.
        """
        from repro.core.migration import DEFAULT_STICKY_DELTA
        from repro.net.routing import EcmpRouter

        if demands is None:
            demands = [v.demand() for v in self.population]
        router = EcmpRouter(
            self.topology,
            failed_switches=self._failed_switches,
            failed_links=self._failed_links,
        )
        migrator = StickyMigrator(
            self.topology,
            self.config,
            delta=delta if delta is not None else DEFAULT_STICKY_DELTA,
            router=router,
        )
        new, plan = migrator.reassign(self.assignment, demands)
        self._execute_plan(plan, new)
        return plan

    # -- SNAT management (S5.2) ------------------------------------------------------

    def enable_snat(self, vip_addr: int) -> None:
        """Set up SNAT for a VIP: carve disjoint port ranges, compute the
        ECMP slots pointing at each DIP, and push a
        :class:`~repro.dataplane.hostagent.SnatConfig` to every HA."""
        from repro.core.snat import SnatPortManager, slots_of_dip

        record = self._require(vip_addr)
        manager = self._snat_managers.get(vip_addr)
        probe = manager if manager is not None else SnatPortManager(vip_addr)
        # Validate exhaustion before journaling: each allocation takes
        # min(range_size, remaining), so n allocations need
        # (n-1)*range_size + 1 ports.  A journaled op must not fail
        # partway — replay treats its intent as fully applied.
        needed = (len(record.dips) - 1) * probe.range_size + 1
        if probe.remaining_ports < needed:
            raise ControllerError(
                f"SNAT port space of VIP {format_ip(vip_addr)} cannot "
                f"cover {len(record.dips)} DIPs"
            )
        with self._journal_op("enable_snat", {"vip": vip_addr}):
            if manager is None:
                manager = probe
                self._snat_managers[vip_addr] = manager
            dip_addrs = record.dip_addrs()
            for dip in record.dips:
                from repro.dataplane.hostagent import SnatConfig

                port_range = manager.allocate(dip.addr)
                snat_config = SnatConfig(
                    vip=vip_addr,
                    n_slots=len(dip_addrs),
                    my_slots=slots_of_dip(
                        dip_addrs, dip.addr, hash_seed=self.hash_seed
                    ),
                    port_range=port_range.as_tuple(),
                    hash_seed=self.hash_seed,
                )
                self.send_command(
                    f"host:{dip.server_id}",
                    "host_configure_snat",
                    lambda dip=dip, cfg=snat_config: self.host_agents[
                        dip.server_id
                    ].configure_snat(dip.addr, cfg),
                )

    def grant_snat_range(self, vip_addr: int, dip_addr: int):
        """Hand a port-exhausted HA another disjoint range ("If an HA
        runs out of available ports, it receives another set from the
        Duet controller", S5.2).  Returns the new range and re-pushes the
        config."""
        from repro.core.snat import SnatError, slots_of_dip
        from repro.dataplane.hostagent import SnatConfig

        record = self._require(vip_addr)
        manager = self._snat_managers.get(vip_addr)
        if manager is None:
            raise ControllerError(
                f"SNAT not enabled for VIP {format_ip(vip_addr)}"
            )
        matching = [d for d in record.dips if d.addr == dip_addr]
        if not matching:
            raise ControllerError(
                f"{format_ip(dip_addr)} is not a DIP of {format_ip(vip_addr)}"
            )
        dip = matching[0]
        if manager.remaining_ports < 1:
            raise ControllerError(
                f"SNAT port space of VIP {format_ip(vip_addr)} exhausted"
            )
        with self._journal_op(
            "grant_snat_range", {"vip": vip_addr, "dip": dip_addr}
        ):
            port_range = manager.allocate(dip_addr)
            dip_addrs = record.dip_addrs()
            snat_config = SnatConfig(
                vip=vip_addr,
                n_slots=len(dip_addrs),
                my_slots=slots_of_dip(
                    dip_addrs, dip.addr, hash_seed=self.hash_seed
                ),
                port_range=port_range.as_tuple(),
                hash_seed=self.hash_seed,
            )
            self.send_command(
                f"host:{dip.server_id}",
                "host_configure_snat",
                lambda: self.host_agents[dip.server_id].configure_snat(
                    dip.addr, snat_config
                ),
            )
        return port_range

    # -- datacenter monitoring (S6, Figure 9) -------------------------------------------

    def collect_traffic_reports(self) -> Dict[int, int]:
        """Aggregate per-VIP byte counters from every host agent — the
        "traffic metering" feed of the monitoring module."""
        totals: Dict[int, int] = {}
        # Sorted iteration: the result dict's key order (and thus every
        # downstream consumer) is identical across runs and across a
        # journal-restored controller, whose host_agents dict was built
        # in a different insertion order.
        for server in sorted(self.host_agents):
            report = self.host_agents[server].traffic_report()
            for vip_addr in sorted(report):
                _packets, size = report[vip_addr]
                totals[vip_addr] = totals.get(vip_addr, 0) + size
        return totals

    def measured_demands(self, window_s: float) -> List:
        """Turn metered bytes into fresh :class:`VipDemand`\\ s for the
        next assignment epoch.  VIPs with no observed traffic keep their
        configured volume (monitoring gaps must not zero out a service).
        """
        if window_s <= 0:
            raise ControllerError("metering window must be positive")
        observed = self.collect_traffic_reports()
        demands = []
        for vip in self.population:
            base = vip.demand()
            size = observed.get(vip.addr)
            if size is None:
                demands.append(base)
            else:
                measured_bps = size * 8 / window_s
                demands.append(base.scaled(
                    measured_bps / base.traffic_bps
                    if base.traffic_bps > 0 else 0.0
                ))
        return demands

    def collect_health_reports(self) -> Dict[int, bool]:
        """DIP health across the fleet ("It receives the VIP health
        status periodically from the host agents")."""
        health: Dict[int, bool] = {}
        # Sorted for the same reason as collect_traffic_reports: bit-
        # reproducible iteration order regardless of how the host_agents
        # dict was populated (boot order vs recovery order).
        for server in sorted(self.host_agents):
            report = self.host_agents[server].health_report()
            for dip_addr in sorted(report):
                health[dip_addr] = report[dip_addr]
        return health

    def reap_failed_dips(self) -> List[int]:
        """Remove DIPs the health feed marks dead (S5.1: "The Duet
        controller monitors DIP health and removes failed DIP from the
        set of DIPs").  Returns the removed DIP addresses; a VIP's last
        DIP is never reaped (the VIP would be dead anyway, and removal
        would leave dangling state)."""
        reaped: List[int] = []
        for dip_addr, healthy in sorted(self.collect_health_reports().items()):
            if healthy:
                continue
            record = next(
                (self._records[addr] for addr in sorted(self._records)
                 if any(d.addr == dip_addr
                        for d in self._records[addr].dips)),
                None,
            )
            if record is None or len(record.dips) <= 1:
                continue
            self.remove_dip(record.addr, dip_addr)
            reaped.append(dip_addr)
        return reaped

    # -- introspection ------------------------------------------------------------------

    def record(self, vip_addr: int) -> VipRecord:
        return self._require(vip_addr)

    def records(self) -> Dict[int, VipRecord]:
        """Read-only view: VIP address -> controller record."""
        return dict(self._records)

    @property
    def failed_switches(self) -> Set[int]:
        return set(self._failed_switches)

    @property
    def failed_links(self) -> Set[int]:
        return set(self._failed_links)

    def live_mux_refs(self) -> Set[MuxRef]:
        """Every mux a route may legitimately point at right now."""
        refs: Set[MuxRef] = {MuxRef.smux(s.smux_id) for s in self.smuxes}
        refs.update(
            MuxRef.hmux(index)
            for index in self.switch_agents
            if index not in self._failed_switches
        )
        return refs

    def snat_enabled(self, vip_addr: int) -> bool:
        return vip_addr in self._snat_managers

    def snat_managers(self) -> Dict[int, object]:
        """Read-only view of the per-VIP SNAT port managers."""
        return dict(self._snat_managers)

    def set_fault_model(self, fault_model: Optional[FaultModel]) -> None:
        """Swap the transient-fault injector on every switch agent (the
        chaos engine uses this to turn faults on/off mid-run)."""
        self._fault_model = fault_model
        for agent in self.switch_agents.values():
            agent.fault_model = fault_model

    def vip_location(self, vip_addr: int) -> Optional[int]:
        """Switch hosting the VIP, or None when it is SMux-only."""
        return self._require(vip_addr).assigned_switch

    def hmux_vip_count(self) -> int:
        return sum(
            1 for r in self._records.values()
            if r.assigned_switch is not None
        )

    def _require(self, vip_addr: int) -> VipRecord:
        record = self._records.get(vip_addr)
        if record is None:
            raise ControllerError(f"VIP {format_ip(vip_addr)} unknown")
        return record
