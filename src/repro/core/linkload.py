"""Network-wide link utilization under an assignment (paper S8.5).

Figure 19 measures the maximum link utilization in three states: the
healthy network, three random switch failures, and a whole-container
failure.  Failures move traffic in two ways: VIPs whose HMux died fail
over to the SMux backstop (their traffic now flows to the SMux racks),
and surviving flows re-route around dead elements over the remaining
ECMP paths.  The paper's headline: the worst link grows by no more than
~16%, comfortably inside the 20% headroom the assignment reserves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.assignment import Assignment
from repro.net.failures import FailureScenario
from repro.net.routing import EcmpRouter, UnreachableError
from repro.net.topology import SwitchKind, Topology
from repro.workload.vips import VipDemand


def default_smux_tors(topology: Topology) -> List[int]:
    """Racks hosting the SMux fleet: every other rack of every container.

    Ananta-style deployments spread SMuxes "throughout the DC" (S2.1);
    concentrating the backstop would turn a failover into a new hotspot,
    so the default disperses failover traffic widely.
    """
    tors: List[int] = []
    for c in range(topology.n_containers):
        tors.extend(topology.tors(c)[::2])
    return tors


@dataclass
class UtilizationReport:
    """Per-link utilization plus bookkeeping about failover."""

    utilization: np.ndarray
    failover_traffic_bps: float
    dead_traffic_bps: float

    @property
    def max_utilization(self) -> float:
        if not len(self.utilization):
            return 0.0
        return float(self.utilization.max())


class LinkUtilizationComputer:
    """Places an assignment's traffic onto links under a failure state."""

    def __init__(
        self,
        topology: Topology,
        *,
        smux_tors: Optional[Sequence[int]] = None,
    ) -> None:
        self.topology = topology
        self.smux_tors = (
            list(smux_tors) if smux_tors is not None
            else default_smux_tors(topology)
        )

    def compute(
        self,
        assignment: Assignment,
        scenario: FailureScenario = FailureScenario.none(),
    ) -> UtilizationReport:
        """Utilization of every link with ``scenario`` applied.

        Each VIP's traffic flows ingress -> serving point(s) -> surviving
        DIP racks.  The serving point is its HMux if alive, else the SMux
        racks (split evenly).  Ingress from dead racks and VIPs with no
        surviving DIPs disappear (S8.5).
        """
        router = scenario.router(self.topology)
        load = np.zeros(self.topology.n_links)
        dead_tors = scenario.dead_tors(self.topology)
        alive_smux_tors = [
            t for t in self.smux_tors if t not in scenario.failed_switches
        ]
        failover = 0.0
        dead = 0.0
        for vip_id, demand in assignment.demands.items():
            switch = assignment.vip_to_switch.get(vip_id)
            if switch is not None and switch in scenario.failed_switches:
                switch = None  # fail over to SMux
                failed_over = True
            else:
                failed_over = switch is None
            if switch is not None:
                serving = [(switch, 1.0)]
            else:
                if not alive_smux_tors:
                    dead += demand.traffic_bps
                    continue
                share = 1.0 / len(alive_smux_tors)
                serving = [(t, share) for t in alive_smux_tors]
            placed = self._place_vip(
                router, load, demand, serving, dead_tors
            )
            if placed == 0.0:
                dead += demand.traffic_bps
            elif failed_over:
                failover += placed
        capacity = np.asarray(self.topology.link_capacities())
        return UtilizationReport(
            utilization=load / capacity,
            failover_traffic_bps=failover,
            dead_traffic_bps=dead,
        )

    def _place_vip(
        self,
        router: EcmpRouter,
        load: np.ndarray,
        demand: VipDemand,
        serving: Sequence[Tuple[int, float]],
        dead_tors: set,
    ) -> float:
        """Add one VIP's flows to ``load``; returns the traffic placed."""
        alive_dip_tors = [
            (tor, count) for tor, count in demand.dip_tors
            if tor not in dead_tors
        ]
        alive_dips = sum(count for _, count in alive_dip_tors)
        if alive_dips == 0:
            return 0.0
        cores = [
            c for c in self.topology.cores()
            if c not in router.failed_switches
        ]
        alive_tors = [
            t for t in self.topology.tors()
            if t not in router.failed_switches
        ]
        placed = 0.0
        for point, share in serving:
            # Ingress legs.
            for tor, fraction in demand.ingress_racks:
                if tor in dead_tors:
                    continue
                volume = demand.traffic_bps * fraction * share
                if self._add(router, load, tor, point, volume):
                    placed += volume
            if demand.internet_fraction > 0 and cores:
                per_core = (
                    demand.traffic_bps * demand.internet_fraction
                    * share / len(cores)
                )
                for core in cores:
                    if self._add(router, load, core, point, per_core):
                        placed += per_core
            # Diffuse intra ingress: uniformly from every alive rack.
            diffuse = demand.diffuse_intra_fraction
            if diffuse > 1e-12 and alive_tors:
                per_tor = (
                    demand.traffic_bps * diffuse * share / len(alive_tors)
                )
                for tor in alive_tors:
                    if tor == point:
                        placed += per_tor  # sourced at the serving switch
                        continue
                    if self._add(router, load, tor, point, per_tor):
                        placed += per_tor
            # DIP legs: surviving DIPs share the placed traffic; resilient
            # hashing spreads the dead DIPs' flows over the survivors.
            arriving = demand.traffic_bps * share
            for tor, count in alive_dip_tors:
                volume = arriving * count / alive_dips
                self._add(router, load, point, tor, volume)
        return placed

    def _add(
        self,
        router: EcmpRouter,
        load: np.ndarray,
        src: int,
        dst: int,
        volume: float,
    ) -> bool:
        if volume <= 0:
            return False
        try:
            fractions = router.path_fractions(src, dst)
        except UnreachableError:
            return False
        for link, fraction in fractions.items():
            load[link] += volume * fraction
        return True
