"""Controller-side SNAT port-range management (paper S5.2).

For SNAT, "Duet assigns disjoint port ranges to the DIPs" of a VIP, and
each host agent picks ports from its range whose return five-tuple hashes
onto an HMux ECMP slot pointing back at that DIP.  "If an HA runs out of
available ports, it receives another set from the Duet controller."

:class:`SnatPortManager` owns the VIP's port space: it carves disjoint
ranges, remembers which DIP holds which, and hands out further ranges on
exhaustion.  :func:`slots_of_dip` computes the ECMP slots pointing at a
DIP — the other half of the :class:`~repro.dataplane.hostagent.SnatConfig`
the controller ships to each HA.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dataplane.hashing import ResilientHashTable
from repro.net.addressing import format_ip

#: Ephemeral port space carved into SNAT ranges (below it: well-known +
#: listener ports).
DEFAULT_PORT_FLOOR = 1024
DEFAULT_PORT_CEIL = 65535


class SnatError(Exception):
    """SNAT port-space exhaustion or misuse."""


@dataclass(frozen=True)
class PortRange:
    lo: int
    hi: int

    def __post_init__(self) -> None:
        if not 0 <= self.lo <= self.hi <= 0xFFFF:
            raise SnatError(f"invalid port range [{self.lo}, {self.hi}]")

    @property
    def size(self) -> int:
        return self.hi - self.lo + 1

    def as_tuple(self) -> Tuple[int, int]:
        return (self.lo, self.hi)


class SnatPortManager:
    """Disjoint port-range allocation for one VIP's DIPs."""

    def __init__(
        self,
        vip: int,
        *,
        range_size: int = 2048,
        floor: int = DEFAULT_PORT_FLOOR,
        ceil: int = DEFAULT_PORT_CEIL,
    ) -> None:
        if range_size < 1:
            raise SnatError("range size must be positive")
        if not 0 <= floor <= ceil <= 0xFFFF:
            raise SnatError("invalid port space bounds")
        self.vip = vip
        self.range_size = range_size
        self.floor = floor
        self.ceil = ceil
        self._next = floor
        self._held: Dict[int, List[PortRange]] = {}

    @property
    def remaining_ports(self) -> int:
        return max(0, self.ceil - self._next + 1)

    def allocate(self, dip: int) -> PortRange:
        """Hand the DIP its next disjoint range; raises on exhaustion."""
        size = min(self.range_size, self.remaining_ports)
        if size == 0:
            raise SnatError(
                f"SNAT port space of VIP {format_ip(self.vip)} exhausted"
            )
        allocated = PortRange(self._next, self._next + size - 1)
        self._next = allocated.hi + 1
        self._held.setdefault(dip, []).append(allocated)
        return allocated

    def ranges_of(self, dip: int) -> List[PortRange]:
        return list(self._held.get(dip, ()))

    def release_dip(self, dip: int) -> int:
        """Forget a removed DIP's ranges.

        The port numbers themselves are not recycled until the VIP's
        space wraps — matching production practice, where reuse too soon
        risks colliding with lingering connections.  Returns the number
        of ranges released.
        """
        return len(self._held.pop(dip, ()))

    def holder_of(self, port: int) -> Optional[int]:
        """Which DIP holds the range covering ``port`` (None if free)."""
        for dip, ranges in self._held.items():
            for r in ranges:
                if r.lo <= port <= r.hi:
                    return dip
        return None

    def to_state(self) -> Dict:
        """JSON-safe dump for the controller's journal snapshots.  Held
        ranges keep their insertion order — a restored manager must hand
        out the same next range as a never-crashed one."""
        return {
            "vip": self.vip,
            "range_size": self.range_size,
            "floor": self.floor,
            "ceil": self.ceil,
            "next": self._next,
            "held": [
                [dip, [r.as_tuple() for r in ranges]]
                for dip, ranges in self._held.items()
            ],
        }

    @classmethod
    def from_state(cls, state: Dict) -> "SnatPortManager":
        manager = cls(
            state["vip"],
            range_size=state["range_size"],
            floor=state["floor"],
            ceil=state["ceil"],
        )
        manager._next = state["next"]
        manager._held = {
            dip: [PortRange(lo, hi) for lo, hi in ranges]
            for dip, ranges in state["held"]
        }
        return manager

    def validate_disjoint(self) -> bool:
        """True iff no two held ranges overlap (invariant check)."""
        all_ranges = sorted(
            (r for ranges in self._held.values() for r in ranges),
            key=lambda r: r.lo,
        )
        for a, b in zip(all_ranges, all_ranges[1:]):
            if b.lo <= a.hi:
                return False
        return True


def slots_of_dip(
    dips: Sequence[int],
    target_dip: int,
    *,
    n_slots: Optional[int] = None,
    hash_seed: int = 0,
) -> Tuple[int, ...]:
    """ECMP slot indices pointing at ``target_dip`` in the HMux layout.

    Rebuilds the exact slot table an HMux programs for this DIP list (the
    layout is deterministic) and returns the slots owned by the target —
    what the HA needs to invert the hash for SNAT.
    """
    if target_dip not in dips:
        raise SnatError(f"{format_ip(target_dip)} is not one of the DIPs")
    table = ResilientHashTable(
        list(range(len(dips))),
        n_slots=n_slots if n_slots is not None else len(dips),
        seed=hash_seed,
    )
    member = list(dips).index(target_dip)
    return tuple(
        slot for slot, owner in enumerate(table.slots()) if owner == member
    )
