"""Vectorized incremental VIP-assignment engine (``engine="fast"``).

The scalar greedy pass (:mod:`repro.core.assignment`) probes every
candidate switch per VIP with a fresh sparse load-vector walk: for a
fabric with |S| switches that is |S| concatenations, divisions and
reductions *per VIP per epoch* — the control-plane hot path once epoch
re-assignment runs at the ROADMAP scale.  This module batches that work:

* **Per-leg delta matrices.**  A VIP's load vector is a weighted sum of
  *legs* (ingress rack → s, Internet → s, diffuse → s, s → DIP rack),
  and each leg's path-fraction pattern depends only on the topology and
  the frozen failure set — never on the utilization state or the
  placement history.  The engine therefore caches, per leg anchor, a CSR
  matrix holding that leg's sparse (link, fraction) row for **every**
  candidate switch at once, built from the same
  :class:`~repro.core.assignment.LoadCalculator` path-fraction caches the
  scalar engine reads.
* **One dense evaluation per VIP.**  Stacking the legs of one demand
  gives the per-(candidate, link) utilization-delta matrix; a single
  ``np.bincount`` over ``candidate * n_links + link`` accumulates it
  densely, and one row-max against the current link-utilization vector
  yields every candidate's post-placement link peak.  Greedy placement
  becomes an argmin over that cached MRU vector instead of |S| topology
  walks.
* **Invalidation.**  Delta rows are *placement-invariant*: committing a
  VIP only changes the shared utilization vectors (which are inputs to
  the evaluation, not part of the cache), so placements invalidate
  nothing.  Rows are keyed by the frozen :class:`VipDemand` structure;
  only demand churn (new VIPs, shifted ingress/DIP sets) builds new rows,
  and the caches self-limit via an entry budget (bulk clear, counted in
  ``rows_invalidated``).

**Bit-identity with the scalar engine** is the design contract, enforced
by ``tests/test_assign_differential.py``: every float is produced by the
same IEEE-754 operation sequence as the scalar code (``np.bincount``
accumulates per key in input order, exactly like the scalar dict loop;
weights, divisions and comparisons reuse the scalar expressions), and
tie-breaking goes through the very same seeded RNG in
:meth:`GreedyAssigner._select_best`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.net.routing import UnreachableError
from repro.net.topology import SwitchKind, Topology
from repro.workload.vips import VipDemand

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.core.assignment import GreedyAssigner, LoadCalculator

#: Above this many dense cells (candidates x links) the bincount
#: evaluation would allocate unreasonably large scratch rows; the
#: assigner then falls back to the scalar engine (recorded in
#: ``AssignStats.fallbacks``).  16M cells = 128 MB of float64 scratch.
DENSE_CELL_LIMIT = 16_000_000

#: Cached leg/demand structures are bulk-cleared once their summed entry
#: counts pass these budgets (mirrors ``_LOAD_CACHE_MAX`` in the scalar
#: calculator: a guard against unbounded growth, not a tuning knob).
LEG_ENTRY_BUDGET = 8_000_000
STRUCTURE_ENTRY_BUDGET = 4_000_000

#: Pending per-solve latencies kept for the metrics collector before the
#: oldest are dropped (scrapes normally drain far earlier).
_MAX_PENDING_SOLVES = 4096


@dataclass
class AssignStats:
    """Counters one engine flavor accumulates across all assigners.

    Mirrored into ``duet_assign_*`` metrics by
    :func:`repro.obs.instrument.register_assignment_metrics`.
    """

    engine: str
    solves: int = 0
    solve_seconds_total: float = 0.0
    candidate_evaluations: int = 0
    rows_built: int = 0
    rows_invalidated: int = 0
    fallbacks: int = 0
    _pending_solve_seconds: List[float] = field(default_factory=list)

    def record_solve(self, seconds: float) -> None:
        self.solves += 1
        self.solve_seconds_total += seconds
        if len(self._pending_solve_seconds) < _MAX_PENDING_SOLVES:
            self._pending_solve_seconds.append(seconds)

    def drain_pending_solves(self) -> List[float]:
        """Hand the not-yet-observed solve latencies to the collector."""
        pending = self._pending_solve_seconds
        self._pending_solve_seconds = []
        return pending

    def reset(self) -> None:
        self.solves = 0
        self.solve_seconds_total = 0.0
        self.candidate_evaluations = 0
        self.rows_built = 0
        self.rows_invalidated = 0
        self.fallbacks = 0
        self._pending_solve_seconds = []


#: Process-wide stats, one per engine flavor ("fast" / "scalar"), so the
#: obs collector sees every assigner the controller or experiments spin
#: up without threading a registry through the solver hot path.
ASSIGN_STATS: Dict[str, AssignStats] = {
    "fast": AssignStats("fast"),
    "scalar": AssignStats("scalar"),
}


def stats_for(engine: str) -> AssignStats:
    return ASSIGN_STATS[engine]


def reset_assign_stats() -> None:
    for stats in ASSIGN_STATS.values():
        stats.reset()


class _LegMatrix:
    """One leg's sparse (link, fraction) row for every switch, CSR-style.

    ``keys`` pre-encodes ``switch * n_links + link`` so a demand's
    stacked legs can be accumulated with a single ``np.bincount``.
    """

    __slots__ = (
        "starts", "link_idx", "pf", "caphr", "keys", "unreachable", "nnz",
    )

    def __init__(
        self,
        n_switches: int,
        n_links: int,
        rows: List[Optional[Tuple[np.ndarray, np.ndarray]]],
        capacity: np.ndarray,
    ) -> None:
        lengths = np.zeros(n_switches, dtype=np.int64)
        self.unreachable = np.zeros(n_switches, dtype=bool)
        parts_idx: List[np.ndarray] = []
        parts_pf: List[np.ndarray] = []
        for s, row in enumerate(rows):
            if row is None:
                self.unreachable[s] = True
                continue
            idx, val = row
            lengths[s] = len(idx)
            if len(idx):
                parts_idx.append(idx)
                parts_pf.append(val)
        self.starts = np.zeros(n_switches + 1, dtype=np.int64)
        np.cumsum(lengths, out=self.starts[1:])
        if parts_idx:
            self.link_idx = np.concatenate(parts_idx)
            self.pf = np.concatenate(parts_pf)
        else:
            self.link_idx = np.empty(0, dtype=np.int64)
            self.pf = np.empty(0)
        self.caphr = capacity[self.link_idx]
        row_ids = np.repeat(np.arange(n_switches, dtype=np.int64), lengths)
        self.keys = row_ids * n_links + self.link_idx
        self.nnz = int(len(self.link_idx))

    def row(self, switch_index: int) -> Tuple[np.ndarray, np.ndarray]:
        lo = self.starts[switch_index]
        hi = self.starts[switch_index + 1]
        return self.link_idx[lo:hi], self.pf[lo:hi]


#: Weight-spec tags: how to turn a demand's traffic into one leg's
#: weight, mirroring the scalar ``_compute_load_vector`` expressions.
_W_INGRESS = 0   # traffic * fraction          (fraction in the spec)
_W_INTERNET = 1  # traffic * internet_fraction
_W_DIFFUSE = 2   # traffic * diffuse_intra_fraction
_W_DIP = 3       # (traffic / alive_dips) * count  (count in the spec)


class _DemandStructure:
    """The traffic-independent stacking of one demand's legs.

    Shared by every demand with the same ingress racks / ingress flags /
    DIP rack multiset; the per-epoch traffic volume only scales the leg
    weights (:meth:`weights`), so a shifted-traffic epoch reuses the
    structure as-is — the delta matrix never goes stale.
    """

    __slots__ = (
        "legs", "specs", "leg_sizes", "keys", "pf", "caphr",
        "reachable", "alive_dips", "all_unreachable", "nnz",
    )

    def __init__(
        self,
        n_switches: int,
        legs: List[_LegMatrix],
        specs: List[Tuple[int, float]],
        alive_dips: int,
        all_unreachable: bool,
    ) -> None:
        self.legs = legs
        self.specs = specs
        self.alive_dips = alive_dips
        self.all_unreachable = all_unreachable
        self.leg_sizes = np.array([m.nnz for m in legs], dtype=np.int64)
        if legs:
            self.keys = np.concatenate([m.keys for m in legs])
            self.pf = np.concatenate([m.pf for m in legs])
            self.caphr = np.concatenate([m.caphr for m in legs])
            reachable = np.ones(n_switches, dtype=bool)
            for m in legs:
                reachable &= ~m.unreachable
            self.reachable = reachable
        else:
            self.keys = np.empty(0, dtype=np.int64)
            self.pf = np.empty(0)
            self.caphr = np.empty(0)
            self.reachable = np.ones(n_switches, dtype=bool)
        self.nnz = int(len(self.keys))

    def weights(self, demand: VipDemand) -> np.ndarray:
        """Per-leg traffic weights, one scalar per leg, in leg order —
        the exact expressions of the scalar ``_compute_load_vector``."""
        traffic = demand.traffic_bps
        out = np.empty(len(self.specs))
        for i, (tag, param) in enumerate(self.specs):
            if tag == _W_INGRESS:
                out[i] = traffic * param
            elif tag == _W_INTERNET:
                out[i] = traffic * demand.internet_fraction
            elif tag == _W_DIFFUSE:
                out[i] = traffic * demand.diffuse_intra_fraction
            else:
                per_dip = traffic / self.alive_dips
                out[i] = per_dip * param
        return out


def _structure_key(demand: VipDemand) -> Tuple:
    return (
        demand.ingress_racks,
        demand.internet_fraction > 0,
        demand.diffuse_intra_fraction > 1e-12,
        demand.dip_tors,
    )


class FastAssignEngine:
    """The numpy-vectorized evaluation backend of :class:`GreedyAssigner`.

    Owns the leg delta matrices and the per-demand stackings; the
    assigner keeps the driver loop, the tie-breaking RNG and the
    utilization state, so both engines share one selection code path.
    """

    def __init__(
        self,
        topology: Topology,
        calculator: "LoadCalculator",
        config,
        dip_capacity: int,
        candidates: Sequence[int],
    ) -> None:
        self.topology = topology
        self.calculator = calculator
        self.config = config
        self.dip_capacity = dip_capacity
        self.n_switches = topology.n_switches
        self.n_links = topology.n_links
        self.dense_cells = self.n_switches * self.n_links
        self.supported = self.dense_cells <= DENSE_CELL_LIMIT
        self.stats = stats_for("fast")
        # Leg matrices: ("from", tor) / ("to", tor) / ("inet",) / ("diff",).
        self._legs: Dict[Tuple, _LegMatrix] = {}
        self._leg_entries = 0
        self._structures: Dict[Tuple, _DemandStructure] = {}
        self._structure_entries = 0
        # Candidate bookkeeping shared with the scalar strategy: Aggs and
        # Cores in switch-index order, exactly as the scalar
        # ``_effective_candidates`` emits them.
        self._agg_core = [
            s for s in candidates
            if topology.switch(s).kind in (SwitchKind.AGG, SwitchKind.CORE)
        ]
        if self.supported:
            self._build_container_index()

    # -- cache management ----------------------------------------------------

    def invalidate(self) -> None:
        """Drop every cached delta row (the leg path-fraction matrices
        stay: like the calculator's path caches they depend only on the
        topology and the frozen failure set)."""
        self.stats.rows_invalidated += len(self._structures)
        self._structures.clear()
        self._structure_entries = 0

    # -- leg matrices --------------------------------------------------------

    def _leg(self, key: Tuple) -> _LegMatrix:
        cached = self._legs.get(key)
        if cached is not None:
            return cached
        calc = self.calculator
        rows: List[Optional[Tuple[np.ndarray, np.ndarray]]] = []
        for s in range(self.n_switches):
            try:
                if key[0] == "from":
                    rows.append(calc._pf(key[1], s))
                elif key[0] == "to":
                    rows.append(calc._pf(s, key[1]))
                elif key[0] == "inet":
                    rows.append(calc._internet_pf(s))
                else:
                    rows.append(calc._diffuse_pf(s))
            except UnreachableError:
                rows.append(None)
        matrix = _LegMatrix(self.n_switches, self.n_links, rows, calc._capacity)
        if self._leg_entries + matrix.nnz > LEG_ENTRY_BUDGET and self._legs:
            self._legs.clear()
            self._leg_entries = 0
        self._legs[key] = matrix
        self._leg_entries += matrix.nnz
        return matrix

    # -- per-demand structures (the delta-matrix rows) -----------------------

    def _structure(self, demand: VipDemand) -> _DemandStructure:
        key = _structure_key(demand)
        cached = self._structures.get(key)
        if cached is not None:
            return cached
        failed = self.calculator.router.failed_switches
        legs: List[_LegMatrix] = []
        specs: List[Tuple[int, float]] = []
        # Leg order mirrors the scalar ``_compute_load_vector`` exactly:
        # ingress racks, Internet, diffuse, then DIP racks.
        for tor, fraction in demand.ingress_racks:
            if tor in failed:
                continue
            legs.append(self._leg(("from", tor)))
            specs.append((_W_INGRESS, fraction))
        if demand.internet_fraction > 0:
            legs.append(self._leg(("inet",)))
            specs.append((_W_INTERNET, 0.0))
        if demand.diffuse_intra_fraction > 1e-12:
            legs.append(self._leg(("diff",)))
            specs.append((_W_DIFFUSE, 0.0))
        alive_dip_tors = [
            (tor, count) for tor, count in demand.dip_tors
            if tor not in failed
        ]
        alive_dips = sum(count for _, count in alive_dip_tors)
        all_unreachable = alive_dips == 0 and demand.n_dips > 0
        if not all_unreachable:
            for tor, count in alive_dip_tors:
                legs.append(self._leg(("to", tor)))
                specs.append((_W_DIP, float(count)))
        structure = _DemandStructure(
            self.n_switches, legs, specs, alive_dips, all_unreachable,
        )
        if (
            self._structure_entries + structure.nnz > STRUCTURE_ENTRY_BUDGET
            and self._structures
        ):
            self.stats.rows_invalidated += len(self._structures)
            self._structures.clear()
            self._structure_entries = 0
        self._structures[key] = structure
        self._structure_entries += structure.nnz
        self.stats.rows_built += 1
        return structure

    # -- evaluation ----------------------------------------------------------

    def _link_peaks(
        self, structure: _DemandStructure, demand: VipDemand,
        link_util: np.ndarray,
    ) -> np.ndarray:
        """Post-placement link peak for *every* switch at once.

        For untouched links the dense cell holds ``U + 0.0 == U`` so a
        row max can only report a value the global base already covers —
        the final ``max(global, peak, mem)`` matches the scalar
        ``max(base, touched-links peak, mem)`` exactly.
        """
        if structure.nnz == 0:
            return np.zeros(self.n_switches)
        w = structure.weights(demand)
        data = structure.pf * np.repeat(w, structure.leg_sizes)
        util = data / structure.caphr
        dense = np.bincount(
            structure.keys, weights=util, minlength=self.dense_cells,
        ).reshape(self.n_switches, self.n_links)
        np.add(dense, link_util, out=dense)
        return dense.max(axis=1)

    def best_switch(
        self,
        assigner: "GreedyAssigner",
        demand: VipDemand,
        link_util: np.ndarray,
        mem_util: np.ndarray,
    ) -> Optional[Tuple[int, float]]:
        """Engine-side half of :meth:`GreedyAssigner.best_switch`:
        vectorized scoring, shared scalar selection."""
        candidates = self.effective_candidates(
            assigner, demand, link_util, mem_util,
        )
        self.stats.candidate_evaluations += len(candidates)
        structure = self._structure(demand)
        if structure.all_unreachable:
            return None
        global_max = assigner._global_max(link_util, mem_util)
        mem_add = demand.n_dips / self.dip_capacity
        peaks = self._link_peaks(structure, demand, link_util)
        reachable = structure.reachable

        def scored():
            for s in candidates:
                new_mem = mem_util[s] + mem_add
                if new_mem > 1.0 + 1e-12 or not reachable[s]:
                    yield s, None
                    continue
                yield s, max(global_max, float(peaks[s]), float(new_mem))

        return assigner._select_best(demand, scored())

    # -- candidate generation (vectorized container decomposition) -----------

    def _build_container_index(self) -> None:
        """Gather per-container ToR/Agg link indices into dense tensors so
        the Figure 5 best-ToR scan runs as a handful of array ops."""
        topo = self.topology
        failed = self.calculator.router.failed_switches
        n_c = topo.n_containers
        tpc = topo.params.tors_per_container
        apc = topo.params.aggs_per_container
        self._tor_sw = np.zeros((n_c, tpc), dtype=np.int64)
        self._tor_dead = np.zeros((n_c, tpc), dtype=bool)
        self._agg_alive = np.zeros((n_c, apc), dtype=bool)
        self._down_idx = np.zeros((n_c, tpc, apc), dtype=np.int64)
        self._up_idx = np.zeros((n_c, tpc, apc), dtype=np.int64)
        down_cap = np.zeros((n_c, tpc, apc))
        up_cap = np.zeros((n_c, tpc, apc))
        headroom = self.config.link_headroom
        for c in range(n_c):
            aggs = topo.aggs(c)
            for j, agg in enumerate(aggs):
                self._agg_alive[c, j] = agg not in failed
            for i, tor in enumerate(topo.tors(c)):
                self._tor_sw[c, i] = tor
                self._tor_dead[c, i] = tor in failed
                for j, agg in enumerate(aggs):
                    down = topo.link_between(agg, tor)
                    up = topo.link_between(tor, agg)
                    self._down_idx[c, i, j] = down.index
                    self._up_idx[c, i, j] = up.index
                    down_cap[c, i, j] = down.capacity * headroom
                    up_cap[c, i, j] = up.capacity * headroom
        self._down_caphr = down_cap
        self._up_caphr = up_cap
        self._n_alive_aggs = self._agg_alive.sum(axis=1)

    def best_tors(
        self,
        demand: VipDemand,
        link_util: np.ndarray,
        mem_util: np.ndarray,
        mem_need: float,
    ) -> List[int]:
        """Best ToR of each container (container order), vectorized over
        all containers — value-identical to the scalar
        ``_best_tor_in_container`` loop (argmin keeps the first minimum,
        matching its strict-improvement scan)."""
        n_alive = self._n_alive_aggs
        valid = n_alive > 0
        if not valid.any():
            return []
        share = np.zeros(len(n_alive))
        np.divide(
            demand.traffic_bps, n_alive, out=share, where=valid,
        )
        mem_term = mem_util[self._tor_sw] + mem_need
        down = link_util[self._down_idx] + share[:, None, None] / self._down_caphr
        up = link_util[self._up_idx] + share[:, None, None] / self._up_caphr
        per_agg = np.maximum(down, up)
        per_agg = np.where(self._agg_alive[:, None, :], per_agg, -np.inf)
        score = np.maximum(mem_term, per_agg.max(axis=2))
        score = np.where(
            self._tor_dead | (mem_term > 1.0 + 1e-12), np.inf, score,
        )
        best = np.argmin(score, axis=1)
        out: List[int] = []
        for c in range(len(n_alive)):
            if not valid[c]:
                continue
            if np.isinf(score[c, best[c]]):
                continue
            out.append(int(self._tor_sw[c, best[c]]))
        return out

    def effective_candidates(
        self,
        assigner: "GreedyAssigner",
        demand: VipDemand,
        link_util: np.ndarray,
        mem_util: np.ndarray,
    ) -> List[int]:
        if self.config.candidate_strategy == "exhaustive":
            return assigner._candidates
        params = self.topology.params
        tor_capacity = (
            params.aggs_per_container * params.tor_agg_gbps * 1e9
            * self.config.link_headroom
        )
        chosen: List[int] = []
        if not demand.traffic_bps > tor_capacity:
            mem_need = demand.n_dips / self.dip_capacity
            chosen = self.best_tors(demand, link_util, mem_util, mem_need)
        chosen.extend(self._agg_core)
        return chosen
