"""VIP replication across multiple HMuxes (paper S3.3 / S9 extension).

The paper notes that "replicating VIP across a few switches may help
improve failure resilience" and revisits the idea in S9 ("it may be
possible to handle failover and migration by replicating VIP entries in
multiple HMuxes"), while warning the design gets complex.  This module
implements the straightforward version so its trade-off can be measured:

* each VIP's /32 is announced by ``k`` switches; BGP ECMP splits its
  traffic evenly among them, so each replica carries 1/k of the volume
  but must hold the *full* DIP set in its tables (memory is paid k
  times);
* when one replica dies, flows shift to the surviving replicas via local
  ECMP re-hash — no SMux fallback window — and, because every replica
  uses the same hash layout, connections are preserved;
* only a VIP with zero surviving replicas falls back to the SMuxes.

The ablation bench (`bench_ablations.py`) measures the cost (extra switch
memory, lower per-switch packing headroom) against the benefit (failover
traffic exposure with k replicas).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.assignment import (
    Assignment,
    AssignmentConfig,
    AssignmentError,
    GreedyAssigner,
)
from repro.net.failures import FailureScenario
from repro.net.topology import Topology
from repro.workload.vips import VipDemand


@dataclass
class ReplicatedAssignment:
    """Each VIP on up to ``k`` switches."""

    topology: Topology
    config: AssignmentConfig
    replicas: int
    vip_to_switches: Dict[int, Tuple[int, ...]]
    unassigned: List[int]
    link_utilization: np.ndarray
    memory_utilization: np.ndarray
    demands: Dict[int, VipDemand]

    @property
    def mru(self) -> float:
        peak = 0.0
        if len(self.link_utilization):
            peak = float(self.link_utilization.max())
        if len(self.memory_utilization):
            peak = max(peak, float(self.memory_utilization.max()))
        return peak

    def total_traffic_bps(self) -> float:
        return sum(d.traffic_bps for d in self.demands.values())

    def assigned_traffic_bps(self) -> float:
        return sum(
            self.demands[vid].traffic_bps for vid in self.vip_to_switches
        )

    def hmux_traffic_fraction(self) -> float:
        total = self.total_traffic_bps()
        if total == 0:
            return 1.0
        return self.assigned_traffic_bps() / total

    def memory_cost_entries(self) -> int:
        """Total tunnel entries consumed across the network (k x the
        unreplicated cost)."""
        return sum(
            self.demands[vid].n_dips * len(switches)
            for vid, switches in self.vip_to_switches.items()
        )

    def smux_exposure_bps(self, scenario: FailureScenario) -> float:
        """Traffic that must fall back to the SMuxes under ``scenario``:
        only VIPs with *no* surviving replica are exposed."""
        exposed = 0.0
        for vip_id, switches in self.vip_to_switches.items():
            if all(s in scenario.failed_switches for s in switches):
                exposed += self.demands[vip_id].traffic_bps
        return exposed

    def degraded_traffic_bps(self, scenario: FailureScenario) -> float:
        """Traffic of VIPs that lost >= 1 (but not all) replicas — served
        by the HMux layer still, at reduced replica count."""
        degraded = 0.0
        for vip_id, switches in self.vip_to_switches.items():
            dead = sum(1 for s in switches if s in scenario.failed_switches)
            if 0 < dead < len(switches):
                degraded += self.demands[vip_id].traffic_bps
        return degraded


class ReplicatedAssigner:
    """Greedy MRU assignment placing each VIP on ``k`` distinct switches.

    Replica r of a VIP is placed with the demand scaled to 1/k of the
    volume (ECMP splits the traffic) but the full DIP memory footprint.
    Replicas of one VIP prefer distinct containers, so a container
    failure cannot take out all of them.
    """

    def __init__(
        self,
        topology: Topology,
        replicas: int = 2,
        config: AssignmentConfig = AssignmentConfig(),
    ) -> None:
        if replicas < 1:
            raise AssignmentError("need at least one replica")
        self.topology = topology
        self.replicas = replicas
        self.config = config
        self._greedy = GreedyAssigner(topology, config)

    def assign(self, demands: Sequence[VipDemand]) -> ReplicatedAssignment:
        greedy = self._greedy
        link_util = np.zeros(self.topology.n_links)
        mem_util = np.zeros(self.topology.n_switches)
        placed: Dict[int, Tuple[int, ...]] = {}
        unassigned: List[int] = []
        ordered = sorted(demands, key=lambda d: (-d.traffic_bps, d.vip_id))
        budget = greedy.host_table_budget
        stopped = False
        for demand in ordered:
            if stopped or len(placed) >= budget:
                unassigned.append(demand.vip_id)
                continue
            if demand.n_dips > greedy.dip_capacity:
                unassigned.append(demand.vip_id)
                continue
            share = demand.scaled(1.0 / self.replicas)
            chosen: List[int] = []
            feasible = True
            for _ in range(self.replicas):
                pick = self._best_excluding(
                    share, chosen, link_util, mem_util
                )
                if pick is None:
                    feasible = False
                    break
                chosen.append(pick)
                greedy.calculator.apply(link_util, share, pick)
                mem_util[pick] += demand.n_dips / greedy.dip_capacity
            if not feasible:
                # Roll back partial replicas; the VIP goes to SMux.
                for switch in chosen:
                    greedy.calculator.apply(
                        link_util, share, switch, sign=-1.0
                    )
                    mem_util[switch] -= demand.n_dips / greedy.dip_capacity
                unassigned.append(demand.vip_id)
                if self.config.stop_on_first_failure:
                    stopped = True
                continue
            placed[demand.vip_id] = tuple(chosen)
        return ReplicatedAssignment(
            topology=self.topology,
            config=self.config,
            replicas=self.replicas,
            vip_to_switches=placed,
            unassigned=unassigned,
            link_utilization=link_util,
            memory_utilization=mem_util,
            demands={d.vip_id: d for d in demands},
        )

    def _best_excluding(
        self,
        share: VipDemand,
        taken: List[int],
        link_util: np.ndarray,
        mem_util: np.ndarray,
    ) -> Optional[int]:
        """Best switch for the next replica: not already hosting this
        VIP, preferring containers without an existing replica."""
        greedy = self._greedy
        taken_containers = {
            self.topology.container_of(s) for s in taken
        }
        best: Optional[int] = None
        best_key: Optional[Tuple[int, float]] = None
        global_max = greedy._global_max(link_util, mem_util)
        for switch in range(self.topology.n_switches):
            if switch in taken:
                continue
            if switch in greedy.calculator.router.failed_switches:
                continue
            mru = greedy.placement_mru(
                share, switch, link_util, mem_util, global_max=global_max,
            )
            if mru is None or mru > 1.0:
                continue
            container = self.topology.container_of(switch)
            # Sort key: new container first (0), then MRU.
            key = (0 if container not in taken_containers else 1, mru)
            if best_key is None or key < best_key:
                best_key = key
                best = switch
        return best
