"""Local-search refinement of a VIP assignment (paper S9).

"The VIP assignment problem resembles bin packing problem, which has many
sophisticated solutions.  We plan to study them in future."  This module
supplies the natural next step beyond one greedy pass: hill-climbing
**move** and **swap** refinement that repeatedly relieves the most
utilized resource.

Each iteration finds the resource (link or switch memory) with peak
utilization, picks a VIP whose placement loads it, and tries (a) moving
that VIP to the switch minimizing the new MRU, or (b) swapping it with a
VIP on another switch.  A change is kept only if it strictly lowers the
network MRU; the loop stops at a local optimum or the iteration budget.

Refinement is intentionally *offline*: the migration machinery (S4.2)
executes the resulting diff through the SMux stepping stone like any
other re-assignment, so refinement quality trades directly against
traffic shuffled — the ablation bench measures both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.assignment import (
    Assignment,
    AssignmentConfig,
    GreedyAssigner,
)
from repro.net.topology import Topology
from repro.workload.vips import VipDemand


@dataclass
class RefinementResult:
    assignment: Assignment
    initial_mru: float
    final_mru: float
    moves: int
    iterations: int

    @property
    def improvement(self) -> float:
        return self.initial_mru - self.final_mru


class AssignmentRefiner:
    """Hill-climbing move/swap refinement."""

    def __init__(
        self,
        topology: Topology,
        config: AssignmentConfig = AssignmentConfig(),
        *,
        max_iterations: int = 200,
        min_gain: float = 1e-4,
        engine: Optional[str] = None,
    ) -> None:
        if max_iterations < 0:
            raise ValueError("iteration budget must be non-negative")
        self.topology = topology
        self.config = config
        self.max_iterations = max_iterations
        self.min_gain = min_gain
        self.engine = engine

    def refine(self, assignment: Assignment) -> RefinementResult:
        """Refine in place-copy; the input assignment is not mutated."""
        greedy = GreedyAssigner(self.topology, self.config, engine=self.engine)
        placed: Dict[int, int] = dict(assignment.vip_to_switch)
        demands = assignment.demands
        link_util = assignment.link_utilization.copy()
        mem_util = assignment.memory_utilization.copy()
        initial_mru = self._mru(link_util, mem_util)
        moves = 0
        iterations = 0

        for iterations in range(1, self.max_iterations + 1):
            # One peak-resource scan per iteration: both the current MRU
            # and the candidate pick below read from it, instead of each
            # re-deriving the argmax/max from scratch.
            peaks = self._peak_resource(link_util, mem_util)
            peak_link, link_peak, peak_switch, mem_peak = peaks
            current_mru = max(link_peak, mem_peak)
            candidates = self._vips_on_peak(
                placed, demands, greedy,
                peak_link, link_peak, peak_switch, mem_peak,
            )
            improved = False
            for vip_id in candidates:
                if self._try_move(
                    vip_id, placed, demands, link_util, mem_util,
                    greedy, current_mru,
                ):
                    moves += 1
                    improved = True
                    break
            if not improved:
                break
        final = Assignment(
            topology=self.topology,
            config=assignment.config,
            vip_to_switch=placed,
            unassigned=list(assignment.unassigned),
            link_utilization=link_util,
            memory_utilization=mem_util,
            demands=dict(demands),
        )
        return RefinementResult(
            assignment=final,
            initial_mru=initial_mru,
            final_mru=self._mru(link_util, mem_util),
            moves=moves,
            iterations=iterations,
        )

    def refine_fresh(self, demands: Sequence[VipDemand]) -> RefinementResult:
        """Greedy assignment followed by refinement."""
        greedy = GreedyAssigner(self.topology, self.config, engine=self.engine)
        return self.refine(greedy.assign(demands))

    # -- internals -----------------------------------------------------------

    @staticmethod
    def _mru(link_util: np.ndarray, mem_util: np.ndarray) -> float:
        peak = float(link_util.max()) if len(link_util) else 0.0
        if len(mem_util):
            peak = max(peak, float(mem_util.max()))
        return peak

    @staticmethod
    def _peak_resource(
        link_util: np.ndarray, mem_util: np.ndarray
    ) -> Tuple[int, float, int, float]:
        """Locate the most-utilized link and switch memory in one scan.

        Returns ``(peak_link, link_peak, peak_switch, mem_peak)``;
        ``max(link_peak, mem_peak)`` is the network MRU, so callers never
        need a separate ``_mru`` pass per iteration.
        """
        peak_link = int(np.argmax(link_util)) if len(link_util) else -1
        link_peak = float(link_util[peak_link]) if peak_link >= 0 else 0.0
        peak_switch = int(np.argmax(mem_util)) if len(mem_util) else -1
        mem_peak = float(mem_util[peak_switch]) if peak_switch >= 0 else 0.0
        return peak_link, link_peak, peak_switch, mem_peak

    def _vips_on_peak(
        self,
        placed: Dict[int, int],
        demands: Dict[int, VipDemand],
        greedy: GreedyAssigner,
        peak_link: int,
        link_peak: float,
        peak_switch: int,
        mem_peak: float,
    ) -> List[int]:
        """VIPs contributing to the most-utilized resource, biggest
        contribution first."""
        scored: List[Tuple[float, int]] = []
        if link_peak >= mem_peak:
            for vip_id, switch in placed.items():
                idx, util = greedy.calculator.load_vector(
                    demands[vip_id], switch
                )
                mask = idx == peak_link
                if mask.any():
                    scored.append((float(util[mask].sum()), vip_id))
        else:
            for vip_id, switch in placed.items():
                if switch == peak_switch:
                    scored.append((
                        demands[vip_id].n_dips / greedy.dip_capacity,
                        vip_id,
                    ))
        scored.sort(reverse=True)
        return [vip_id for _score, vip_id in scored[:8]]

    def _try_move(
        self,
        vip_id: int,
        placed: Dict[int, int],
        demands: Dict[int, VipDemand],
        link_util: np.ndarray,
        mem_util: np.ndarray,
        greedy: GreedyAssigner,
        current_mru: float,
    ) -> bool:
        """Move one VIP to the best other switch if it lowers the MRU."""
        demand = demands[vip_id]
        old_switch = placed[vip_id]
        # Lift the VIP out.
        greedy.calculator.apply(link_util, demand, old_switch, sign=-1.0)
        mem_util[old_switch] -= demand.n_dips / greedy.dip_capacity
        choice = greedy.best_switch(demand, link_util, mem_util)
        if choice is not None:
            new_switch, new_mru = choice
            if (
                new_switch != old_switch
                and new_mru < current_mru - self.min_gain
            ):
                greedy.calculator.apply(link_util, demand, new_switch)
                mem_util[new_switch] += demand.n_dips / greedy.dip_capacity
                placed[vip_id] = new_switch
                return True
        # Put it back.
        greedy.calculator.apply(link_util, demand, old_switch)
        mem_util[old_switch] += demand.n_dips / greedy.dip_capacity
        return False
