"""Baseline VIP assignment strategies.

The paper compares the MRU-greedy assignment against **Random** (S8.4,
Figure 18): "a random strategy that selects the first feasible switch
that does not violate the link or switch memory capacity ... a variant of
FFD (First Fit Decreasing) as the VIPs are assigned in the sorted order
of decreasing traffic volume".  Random needs 120%-307% more SMuxes
because it packs VIPs poorly and strands capacity.

``FirstFitAssigner`` is an extra ablation: first feasible switch in a
*fixed* (index) order rather than a random order.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.assignment import (
    Assignment,
    AssignmentConfig,
    GreedyAssigner,
)
from repro.net.topology import Topology
from repro.workload.vips import VipDemand


class _FeasibleFirstAssigner:
    """Shared machinery: walk candidates in some order, take the first
    placement that keeps every resource within capacity."""

    def __init__(
        self,
        topology: Topology,
        config: AssignmentConfig = AssignmentConfig(),
    ) -> None:
        self.topology = topology
        self.config = config
        self._greedy = GreedyAssigner(topology, config)

    def _candidate_order(
        self, candidates: List[int], rng: random.Random
    ) -> List[int]:
        raise NotImplementedError

    def assign(self, demands: Sequence[VipDemand]) -> Assignment:
        rng = random.Random(self.config.seed)
        greedy = self._greedy
        link_util = np.zeros(self.topology.n_links)
        mem_util = np.zeros(self.topology.n_switches)
        placed: Dict[int, int] = {}
        unassigned: List[int] = []
        candidates = [
            s.index for s in self.topology.switches
            if s.index not in greedy.calculator.router.failed_switches
        ]
        ordered = sorted(demands, key=lambda d: (-d.traffic_bps, d.vip_id))
        stopped = False
        for demand in ordered:
            if stopped or len(placed) >= greedy.host_table_budget:
                unassigned.append(demand.vip_id)
                continue
            if demand.n_dips > greedy.dip_capacity:
                unassigned.append(demand.vip_id)
                continue
            target: Optional[int] = None
            for switch in self._candidate_order(candidates, rng):
                mru = greedy.placement_mru(
                    demand, switch, link_util, mem_util, global_max=0.0
                )
                if mru is not None and mru <= 1.0:
                    target = switch
                    break
            if target is None:
                unassigned.append(demand.vip_id)
                if self.config.stop_on_first_failure:
                    stopped = True
                continue
            greedy.calculator.apply(link_util, demand, target)
            mem_util[target] += demand.n_dips / greedy.dip_capacity
            placed[demand.vip_id] = target
        return Assignment(
            topology=self.topology,
            config=self.config,
            vip_to_switch=placed,
            unassigned=unassigned,
            link_utilization=link_util,
            memory_utilization=mem_util,
            demands={d.vip_id: d for d in demands},
        )


class RandomAssigner(_FeasibleFirstAssigner):
    """The paper's Random baseline: first feasible switch in a random
    order, VIPs in decreasing traffic order (FFD variant, S8.4)."""

    def _candidate_order(
        self, candidates: List[int], rng: random.Random
    ) -> List[int]:
        shuffled = list(candidates)
        rng.shuffle(shuffled)
        return shuffled


class FirstFitAssigner(_FeasibleFirstAssigner):
    """Ablation: first feasible switch in fixed index order (ToRs first).
    Concentrates load even harder than Random."""

    def _candidate_order(
        self, candidates: List[int], rng: random.Random
    ) -> List[int]:
        return candidates
