"""VIP migration across assignment epochs (paper S4.2, S8.6).

As traffic shifts, VIPs are added/removed and failures happen, the
controller periodically recomputes the assignment and migrates VIPs.
Three strategies, exactly as evaluated in Figure 20:

* **Sticky** (Duet's choice): recompute greedily but keep a VIP on its
  current switch unless moving reduces its MRU by more than a threshold
  delta (paper uses 0.05).  Avoids mass reshuffling (~3.5% of traffic
  migrated per epoch vs ~37% for Non-sticky).
* **Non-sticky**: recompute the assignment from scratch each epoch and
  migrate every VIP whose placement changed.
* **One-time**: assign once at epoch 0 and never adapt (the strawman
  whose HMux coverage decays to ~75%).

Every migration is routed *through the SMuxes* as a stepping stone:
withdraw-then-announce in two global phases, which (a) never requires a
switch to hold both the old and new VIPs at once — eliminating the
transitional memory deadlock of Figure 4 — and (b) keeps the VIP served
(by SMux) at every instant.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.assignment import (
    Assignment,
    AssignmentConfig,
    GreedyAssigner,
)
from repro.net.routing import EcmpRouter
from repro.net.topology import Topology
from repro.workload.vips import VipDemand

#: The paper's Sticky threshold: "a VIP will migrate to a new assignment
#: only if doing so reduces the MRU by 5%".
DEFAULT_STICKY_DELTA = 0.05


class StepKind(enum.Enum):
    WITHDRAW = "withdraw"  # remove VIP from a switch; traffic -> SMux
    ANNOUNCE = "announce"  # program + announce VIP on a switch


@dataclass(frozen=True)
class MigrationStep:
    kind: StepKind
    vip_id: int
    switch_index: int


@dataclass
class MigrationPlan:
    """An ordered, deadlock-free migration between two assignments.

    All withdrawals come before all announcements (SMux stepping stone,
    Figure 4c); ``traffic_shuffled_bps`` is the VIP traffic that transits
    the SMuxes during the migration — the Figure 20b metric — i.e. the
    traffic of VIPs that were on an HMux and are moving elsewhere.
    """

    steps: List[MigrationStep]
    moved_vip_ids: List[int]
    traffic_shuffled_bps: float
    total_traffic_bps: float

    @property
    def shuffled_fraction(self) -> float:
        if self.total_traffic_bps == 0:
            return 0.0
        return self.traffic_shuffled_bps / self.total_traffic_bps

    def withdrawals(self) -> List[MigrationStep]:
        return [s for s in self.steps if s.kind is StepKind.WITHDRAW]

    def announcements(self) -> List[MigrationStep]:
        return [s for s in self.steps if s.kind is StepKind.ANNOUNCE]

    def validate_two_phase(self) -> bool:
        """True iff no announcement precedes any withdrawal (the property
        that guarantees freedom from transitional memory deadlock)."""
        seen_announce = False
        for step in self.steps:
            if step.kind is StepKind.ANNOUNCE:
                seen_announce = True
            elif seen_announce:
                return False
        return True


def diff_assignments(
    old: Optional[Assignment],
    new: Assignment,
) -> MigrationPlan:
    """Build the two-phase migration plan from ``old`` to ``new``."""
    old_map: Dict[int, int] = dict(old.vip_to_switch) if old else {}
    new_map = new.vip_to_switch
    steps: List[MigrationStep] = []
    moved: List[int] = []
    shuffled = 0.0

    # Phase 1: withdraw every VIP leaving its old switch.
    for vip_id, old_switch in sorted(old_map.items()):
        if new_map.get(vip_id) != old_switch:
            steps.append(MigrationStep(StepKind.WITHDRAW, vip_id, old_switch))
            moved.append(vip_id)
            demand = new.demands.get(vip_id)
            if demand is not None:
                shuffled += demand.traffic_bps
    # Phase 2: announce every VIP arriving at a new switch.
    for vip_id, new_switch in sorted(new_map.items()):
        if old_map.get(vip_id) != new_switch:
            steps.append(MigrationStep(StepKind.ANNOUNCE, vip_id, new_switch))
            if vip_id not in old_map:
                moved.append(vip_id)
    return MigrationPlan(
        steps=steps,
        moved_vip_ids=sorted(set(moved)),
        traffic_shuffled_bps=shuffled,
        total_traffic_bps=new.total_traffic_bps(),
    )


class StickyMigrator:
    """Sticky re-assignment (S4.2): move a VIP only for a >= delta MRU win."""

    def __init__(
        self,
        topology: Topology,
        config: AssignmentConfig = AssignmentConfig(),
        delta: float = DEFAULT_STICKY_DELTA,
        router: Optional[EcmpRouter] = None,
        engine: Optional[str] = None,
    ) -> None:
        if delta < 0:
            raise ValueError("delta must be non-negative")
        self.topology = topology
        self.config = config
        self.delta = delta
        self.router = router
        self.engine = engine

    def reassign(
        self,
        old: Optional[Assignment],
        demands: Sequence[VipDemand],
    ) -> Tuple[Assignment, MigrationPlan]:
        """Compute the sticky assignment for the new epoch and its plan."""
        started = time.perf_counter()
        assigner = GreedyAssigner(
            self.topology, self.config, router=self.router,
            engine=self.engine,
        )
        old_map: Dict[int, int] = dict(old.vip_to_switch) if old else {}
        link_util = np.zeros(self.topology.n_links)
        mem_util = np.zeros(self.topology.n_switches)
        placed: Dict[int, int] = {}
        unassigned: List[int] = []
        stopped = False
        failed = assigner.calculator.router.failed_switches
        ordered = self.config.order_demands(demands)

        for demand in ordered:
            if stopped or len(placed) >= assigner.host_table_budget:
                unassigned.append(demand.vip_id)
                continue
            if demand.n_dips > assigner.dip_capacity:
                unassigned.append(demand.vip_id)
                continue
            current = old_map.get(demand.vip_id)
            if current is not None and current in failed:
                current = None
            choice = assigner.best_switch(demand, link_util, mem_util)
            if current is not None:
                keep_mru = assigner.placement_mru(
                    demand, current, link_util, mem_util
                )
            else:
                keep_mru = None
            target: Optional[int]
            if choice is None:
                # No fresh placement fits; staying put is still allowed if
                # the current switch remains feasible.
                target = current if keep_mru is not None and keep_mru <= 1.0 else None
            else:
                best_switch, best_mru = choice
                if (
                    keep_mru is not None
                    and keep_mru <= 1.0
                    and (keep_mru - best_mru) <= self.delta
                ):
                    target = current  # not worth the reshuffle
                else:
                    target = best_switch
            if target is None:
                unassigned.append(demand.vip_id)
                if self.config.stop_on_first_failure and choice is None:
                    stopped = True
                continue
            assigner.calculator.apply(link_util, demand, target)
            mem_util[target] += demand.n_dips / assigner.dip_capacity
            placed[demand.vip_id] = target

        assigner.stats.record_solve(time.perf_counter() - started)
        new = Assignment(
            topology=self.topology,
            config=self.config,
            vip_to_switch=placed,
            unassigned=unassigned,
            link_utilization=link_util,
            memory_utilization=mem_util,
            demands={d.vip_id: d for d in demands},
        )
        return new, diff_assignments(old, new)


class NonStickyMigrator:
    """Fresh assignment each epoch; migrates everything that changed.

    "calculates the new assignment from scratch based on current traffic
    matrix, but migrates all the VIPs at the same time through SMuxes to
    avoid the memory deadlock problem" (S8.6).
    """

    def __init__(
        self,
        topology: Topology,
        config: AssignmentConfig = AssignmentConfig(),
        router: Optional[EcmpRouter] = None,
        engine: Optional[str] = None,
    ) -> None:
        self.topology = topology
        self.config = config
        self.router = router
        self.engine = engine

    def reassign(
        self,
        old: Optional[Assignment],
        demands: Sequence[VipDemand],
    ) -> Tuple[Assignment, MigrationPlan]:
        assigner = GreedyAssigner(
            self.topology, self.config, router=self.router,
            engine=self.engine,
        )
        new = assigner.assign(demands)
        return new, diff_assignments(old, new)


class OneTimeMigrator:
    """Assign at the first epoch, then only carry the map forward.

    VIPs added after epoch 0 go to the SMuxes.  As traffic drifts, a
    stale placement can push a resource past capacity; since One-time by
    definition never migrates, the operator's only remedy is to shed the
    overflowing VIP to the SMuxes — so carrying the map forward enforces
    capacity (heaviest VIPs first) and spills the rest.  This is what
    makes One-time's HMux coverage decay over the trace (Figure 20a).
    """

    def __init__(
        self,
        topology: Topology,
        config: AssignmentConfig = AssignmentConfig(),
        engine: Optional[str] = None,
    ) -> None:
        self.topology = topology
        self.config = config
        self.engine = engine
        self._initial: Optional[Dict[int, int]] = None

    def reassign(
        self,
        old: Optional[Assignment],
        demands: Sequence[VipDemand],
    ) -> Tuple[Assignment, MigrationPlan]:
        started = time.perf_counter()
        assigner = GreedyAssigner(self.topology, self.config, engine=self.engine)
        if self._initial is None:
            new = assigner.assign(demands)
            self._initial = dict(new.vip_to_switch)
            return new, diff_assignments(old, new)
        link_util = np.zeros(self.topology.n_links)
        mem_util = np.zeros(self.topology.n_switches)
        placed: Dict[int, int] = {}
        unassigned: List[int] = []
        ordered = sorted(demands, key=lambda d: (-d.traffic_bps, d.vip_id))
        for demand in ordered:
            switch = self._initial.get(demand.vip_id)
            if switch is None:
                unassigned.append(demand.vip_id)
                continue
            mru = assigner.placement_mru(
                demand, switch, link_util, mem_util, global_max=0.0
            )
            if mru is None or mru > 1.0:
                unassigned.append(demand.vip_id)  # shed to SMux
                continue
            assigner.calculator.apply(link_util, demand, switch)
            mem_util[switch] += demand.n_dips / assigner.dip_capacity
            placed[demand.vip_id] = switch
        assigner.stats.record_solve(time.perf_counter() - started)
        new = Assignment(
            topology=self.topology,
            config=self.config,
            vip_to_switch=placed,
            unassigned=unassigned,
            link_utilization=link_util,
            memory_utilization=mem_util,
            demands={d.vip_id: d for d in demands},
        )
        return new, diff_assignments(old, new)
