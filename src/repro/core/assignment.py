"""The Duet VIP-switch assignment algorithm (paper S4, Table 1).

VIP assignment is a variant of multi-dimensional bin packing (NP-hard);
Duet approximates it greedily: VIPs are considered in decreasing traffic
order and each is placed on the switch that minimizes the **maximum
resource utilization** (MRU) across all links and switch memories.  If no
placement keeps MRU <= 100%, the algorithm terminates and the remaining
VIPs are "not assigned to any switch - their traffic will be handled by
the SMuxes".

Resources (Table 1):

* every directional **link**, with effective capacity set to 80% of the
  raw bandwidth "to absorb the potential transient congestion during VIP
  migration and network failures",
* every switch's **memory**: the DIP entries of the VIPs assigned to it,
  bounded by min(free ECMP entries, free tunneling entries) ~ 512,
* one global budget: every switch must install a /32 host-table route for
  *every* HMux-assigned VIP (that is how traffic finds the owning HMux),
  so at most ~16K VIPs can be on HMuxes in total (S3.3.2, S8.2).

The extra link utilization of assigning VIP v to switch s is computed
from the topology and ECMP routing: v's ingress traffic flows from each
ingress point to s, and encapsulated traffic flows from s to each rack
hosting one of v's DIPs.

The container decomposition of S4.2/Figure 5 is implemented by
``candidate_strategy="container-best-tor"``: assigning a VIP to different
ToRs of one container only changes utilization *inside* that container,
so the algorithm first picks the best ToR per container by container-
local MRU and only evaluates that ToR globally, shrinking the candidate
set from |S_tor| to |C|.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.fastassign import FastAssignEngine, stats_for
from repro.net.routing import EcmpRouter, UnreachableError
from repro.net.topology import SwitchKind, Topology
from repro.workload.vips import VipDemand


class AssignmentError(Exception):
    """Invalid assignment configuration or state."""


#: VIP processing orders.  The paper uses decreasing traffic and notes
#: "other orderings are possible (e.g., consider VIPs with latency
#: sensitive traffic first)" (S9); the alternatives exist for ablation.
VIP_ORDERS = (
    "traffic-desc", "traffic-asc", "dips-desc", "random", "latency-first",
)

#: Assignment engines: "fast" scores candidates through the vectorized
#: delta-matrix backend (:mod:`repro.core.fastassign`); "scalar" walks
#: each candidate's load vector individually.  Placement-identical by
#: contract (tests/test_assign_differential.py).
ASSIGN_ENGINES = ("fast", "scalar")


@dataclass(frozen=True)
class AssignmentConfig:
    """Tunables of the greedy assignment."""

    link_headroom: float = 0.8
    candidate_strategy: str = "container-best-tor"  # or "exhaustive"
    host_table_budget: Optional[int] = None  # None: from switch tables spec
    dip_capacity: Optional[int] = None       # None: from switch tables spec
    stop_on_first_failure: bool = True       # paper semantics (S4.1)
    vip_order: str = "traffic-desc"          # paper default (S4.1)
    seed: int = 0                            # tie-breaking randomness
    engine: str = "fast"                     # "fast" | "scalar"

    def __post_init__(self) -> None:
        if not 0 < self.link_headroom <= 1.0:
            raise AssignmentError("link_headroom must be in (0, 1]")
        if self.candidate_strategy not in ("container-best-tor", "exhaustive"):
            raise AssignmentError(
                f"unknown candidate strategy: {self.candidate_strategy}"
            )
        if self.vip_order not in VIP_ORDERS:
            raise AssignmentError(f"unknown VIP order: {self.vip_order}")
        if self.engine not in ASSIGN_ENGINES:
            raise AssignmentError(f"unknown assignment engine: {self.engine}")

    def order_demands(self, demands: Sequence["VipDemand"]) -> List["VipDemand"]:
        """The processing order the greedy pass uses."""
        if self.vip_order == "traffic-desc":
            return sorted(demands, key=lambda d: (-d.traffic_bps, d.vip_id))
        if self.vip_order == "traffic-asc":
            return sorted(demands, key=lambda d: (d.traffic_bps, d.vip_id))
        if self.vip_order == "dips-desc":
            return sorted(demands, key=lambda d: (-d.n_dips, d.vip_id))
        if self.vip_order == "latency-first":
            # S9: "consider VIPs with latency sensitive traffic first" so
            # they land on HMuxes even when capacity runs out.
            return sorted(demands, key=lambda d: (
                0 if d.latency_sensitive else 1, -d.traffic_bps, d.vip_id,
            ))
        shuffled = list(demands)
        random.Random(self.seed ^ 0x5EED).shuffle(shuffled)
        return shuffled


@dataclass
class Assignment:
    """The result: which switch hosts each VIP, and the utilization state."""

    topology: Topology
    config: AssignmentConfig
    vip_to_switch: Dict[int, int]
    unassigned: List[int]
    link_utilization: np.ndarray
    memory_utilization: np.ndarray
    demands: Dict[int, VipDemand]

    @property
    def mru(self) -> float:
        """Maximum resource utilization across links and switch memory."""
        peak = 0.0
        if len(self.link_utilization):
            peak = float(self.link_utilization.max())
        if len(self.memory_utilization):
            peak = max(peak, float(self.memory_utilization.max()))
        return peak

    @property
    def n_assigned(self) -> int:
        return len(self.vip_to_switch)

    def assigned_traffic_bps(self) -> float:
        return sum(
            self.demands[vid].traffic_bps for vid in self.vip_to_switch
        )

    def unassigned_traffic_bps(self) -> float:
        return sum(self.demands[vid].traffic_bps for vid in self.unassigned)

    def total_traffic_bps(self) -> float:
        return sum(d.traffic_bps for d in self.demands.values())

    def hmux_traffic_fraction(self) -> float:
        """Fraction of total VIP traffic handled by HMuxes (Figure 20a)."""
        total = self.total_traffic_bps()
        if total == 0:
            return 1.0
        return self.assigned_traffic_bps() / total

    def vips_on_switch(self, switch_index: int) -> List[int]:
        return sorted(
            vid for vid, s in self.vip_to_switch.items() if s == switch_index
        )

    def switch_dip_count(self, switch_index: int) -> int:
        return sum(
            self.demands[vid].n_dips
            for vid in self.vips_on_switch(switch_index)
        )


#: Past this many memoized load vectors the cache is dropped wholesale
#: (greedy + refine on the paper's scale stay far below it; the cap only
#: guards against unbounded growth under adversarial demand churn).
_LOAD_CACHE_MAX = 65536


class LoadCalculator:
    """Computes the sparse extra-utilization vector L_{i,s,v} (Table 1).

    Path-fraction vectors are cached per (src, dst) pair as parallel
    (link index, fraction) numpy arrays; the Internet ingress pattern
    (spread equally over core switches, S2) is shared by all VIPs and
    cached per candidate switch.  Full load vectors are additionally
    memoized per (demand, candidate switch): :class:`VipDemand` is
    frozen and the router's failure set is fixed at construction, so a
    vector never goes stale for the lifetime of one calculator.  The
    greedy assigner probes every candidate switch per VIP and the
    refinement passes re-probe the same pairs repeatedly, so this turns
    the dominant cost from recompute into a dict hit.  Cached arrays
    are returned write-protected; callers must not mutate them.
    """

    def __init__(
        self,
        topology: Topology,
        router: Optional[EcmpRouter] = None,
        link_headroom: float = 0.8,
    ) -> None:
        self.topology = topology
        self.router = router if router is not None else EcmpRouter(topology)
        self._capacity = (
            np.asarray(topology.link_capacities()) * link_headroom
        )
        self._pf_cache: Dict[Tuple[int, int], Tuple[np.ndarray, np.ndarray]] = {}
        self._internet_cache: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        self._diffuse_cache: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        self._load_cache: Dict[
            Tuple[VipDemand, int], Tuple[np.ndarray, np.ndarray]
        ] = {}
        self._load_hits = 0
        self._load_misses = 0
        alive_cores = [
            c for c in topology.cores()
            if c not in self.router.failed_switches
        ]
        self._cores = alive_cores
        self._alive_tors = [
            t for t in topology.tors()
            if t not in self.router.failed_switches
        ]

    def _pf(self, src: int, dst: int) -> Tuple[np.ndarray, np.ndarray]:
        key = (src, dst)
        cached = self._pf_cache.get(key)
        if cached is not None:
            return cached
        fractions = self.router.path_fractions(src, dst)
        idx = np.fromiter(fractions.keys(), dtype=np.int64, count=len(fractions))
        val = np.fromiter(fractions.values(), dtype=float, count=len(fractions))
        self._pf_cache[key] = (idx, val)
        return idx, val

    def _internet_pf(self, dst: int) -> Tuple[np.ndarray, np.ndarray]:
        """Average path-fraction vector from all (alive) cores to dst."""
        cached = self._internet_cache.get(dst)
        if cached is not None:
            return cached
        if not self._cores:
            raise UnreachableError(-1, dst)
        acc: Dict[int, float] = {}
        share = 1.0 / len(self._cores)
        for core in self._cores:
            for link, fraction in self.router.path_fractions(core, dst).items():
                acc[link] = acc.get(link, 0.0) + fraction * share
        idx = np.fromiter(acc.keys(), dtype=np.int64, count=len(acc))
        val = np.fromiter(acc.values(), dtype=float, count=len(acc))
        self._internet_cache[dst] = (idx, val)
        return idx, val

    def _diffuse_pf(self, dst: int) -> Tuple[np.ndarray, np.ndarray]:
        """Average path-fraction vector from every alive rack to dst —
        the template pricing diffuse (DC-wide) intra ingress."""
        cached = self._diffuse_cache.get(dst)
        if cached is not None:
            return cached
        if not self._alive_tors:
            raise UnreachableError(-1, dst)
        acc: Dict[int, float] = {}
        share = 1.0 / len(self._alive_tors)
        for tor in self._alive_tors:
            if tor == dst:
                continue
            for link, fraction in self.router.path_fractions(tor, dst).items():
                acc[link] = acc.get(link, 0.0) + fraction * share
        idx = np.fromiter(acc.keys(), dtype=np.int64, count=len(acc))
        val = np.fromiter(acc.values(), dtype=float, count=len(acc))
        self._diffuse_cache[dst] = (idx, val)
        return idx, val

    def load_vector(
        self, demand: VipDemand, switch_index: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Sparse additional *utilization* on links if ``demand`` lands on
        ``switch_index``: (link indices, added utilization).  Indices may
        repeat; callers accumulate.  The result is memoized per
        (demand, switch) and returned as write-protected arrays — treat
        them as read-only.

        Under failures, traffic sourced at dead racks has *disappeared*
        (S8.5) and DIPs on dead racks no longer receive a share (their
        flows re-spread over the survivors) — neither makes a placement
        infeasible.  Only a candidate unreachable from the live network
        (or a VIP with no surviving DIPs) raises
        :class:`UnreachableError` (never cached, so transient callers
        that catch it see consistent behavior on retry).
        """
        key = (demand, switch_index)
        cached = self._load_cache.get(key)
        if cached is not None:
            self._load_hits += 1
            return cached
        idx, util = self._compute_load_vector(demand, switch_index)
        idx.setflags(write=False)
        util.setflags(write=False)
        if len(self._load_cache) >= _LOAD_CACHE_MAX:
            self._load_cache.clear()
        self._load_cache[key] = (idx, util)
        self._load_misses += 1
        return idx, util

    def invalidate(self) -> None:
        """Drop the memoized load vectors (path-fraction caches stay:
        they depend only on the topology and the frozen failure set)."""
        self._load_cache.clear()

    def cache_info(self) -> Dict[str, int]:
        """Hit/miss/size counters for the load-vector memo."""
        return {
            "hits": self._load_hits,
            "misses": self._load_misses,
            "size": len(self._load_cache),
        }

    def _compute_load_vector(
        self, demand: VipDemand, switch_index: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        failed = self.router.failed_switches
        parts_idx: List[np.ndarray] = []
        parts_val: List[np.ndarray] = []
        traffic = demand.traffic_bps
        # Ingress legs: client racks -> s (dead racks' traffic vanished).
        for tor, fraction in demand.ingress_racks:
            if tor in failed:
                continue
            idx, val = self._pf(tor, switch_index)
            parts_idx.append(idx)
            parts_val.append(val * (traffic * fraction))
        # Internet leg: cores -> s.
        if demand.internet_fraction > 0:
            idx, val = self._internet_pf(switch_index)
            parts_idx.append(idx)
            parts_val.append(val * (traffic * demand.internet_fraction))
        # Diffuse intra leg: uniformly from every rack -> s.
        diffuse = demand.diffuse_intra_fraction
        if diffuse > 1e-12:
            idx, val = self._diffuse_pf(switch_index)
            parts_idx.append(idx)
            parts_val.append(val * (traffic * diffuse))
        # DIP legs: s -> racks; the survivors share the traffic
        # (resilient hashing re-spreads the dead DIPs' flows).
        alive_dip_tors = [
            (tor, count) for tor, count in demand.dip_tors
            if tor not in failed
        ]
        alive_dips = sum(count for _, count in alive_dip_tors)
        if alive_dips == 0 and demand.n_dips > 0:
            raise UnreachableError(switch_index, switch_index)
        if alive_dips > 0:
            per_dip = traffic / alive_dips
            for tor, count in alive_dip_tors:
                idx, val = self._pf(switch_index, tor)
                parts_idx.append(idx)
                parts_val.append(val * (per_dip * count))
        if not parts_idx:
            return (np.empty(0, dtype=np.int64), np.empty(0))
        idx = np.concatenate(parts_idx)
        load = np.concatenate(parts_val)
        return idx, load / self._capacity[idx]

    def apply(
        self,
        link_utilization: np.ndarray,
        demand: VipDemand,
        switch_index: int,
        sign: float = 1.0,
    ) -> None:
        """Accumulate (or with sign=-1, remove) a placement's utilization
        into a dense per-link utilization vector."""
        idx, util = self.load_vector(demand, switch_index)
        np.add.at(link_utilization, idx, sign * util)


class GreedyAssigner:
    """The greedy MRU-minimizing assignment (paper S4.1)."""

    def __init__(
        self,
        topology: Topology,
        config: AssignmentConfig = AssignmentConfig(),
        router: Optional[EcmpRouter] = None,
        engine: Optional[str] = None,
    ) -> None:
        self.topology = topology
        self.config = config
        self.calculator = LoadCalculator(
            topology, router=router, link_headroom=config.link_headroom
        )
        tables = topology.params.tables
        self.dip_capacity = (
            config.dip_capacity if config.dip_capacity is not None
            else tables.dip_capacity
        )
        self.host_table_budget = (
            config.host_table_budget if config.host_table_budget is not None
            else tables.host_table
        )
        self._rng = random.Random(config.seed)
        self._candidates = self._candidate_switches()
        self._container_link_mask: Dict[int, np.ndarray] = {}
        for c in range(topology.n_containers):
            mask = np.zeros(topology.n_links, dtype=bool)
            mask[topology.container_links(c)] = True
            self._container_link_mask[c] = mask
        requested = engine if engine is not None else config.engine
        if requested not in ASSIGN_ENGINES:
            raise AssignmentError(f"unknown assignment engine: {requested}")
        self._engine: Optional[FastAssignEngine] = None
        self.engine_name = requested
        if requested == "fast":
            fast = FastAssignEngine(
                topology, self.calculator, self.config,
                self.dip_capacity, self._candidates,
            )
            if fast.supported:
                self._engine = fast
            else:
                # Dense evaluation would not fit this fabric; count the
                # fallback and run scalar (placement-identical anyway).
                fast.stats.fallbacks += 1
                self.engine_name = "scalar"
        self.stats = stats_for(self.engine_name)

    def _candidate_switches(self) -> List[int]:
        failed = self.calculator.router.failed_switches
        return [
            s.index for s in self.topology.switches if s.index not in failed
        ]

    # -- public API ----------------------------------------------------------

    def assign(self, demands: Sequence[VipDemand]) -> Assignment:
        """Assign all demands from scratch (descending traffic order)."""
        started = time.perf_counter()
        link_util = np.zeros(self.topology.n_links)
        mem_util = np.zeros(self.topology.n_switches)
        placed: Dict[int, int] = {}
        unassigned: List[int] = []
        ordered = self.config.order_demands(demands)
        stopped = False
        for demand in ordered:
            if stopped or len(placed) >= self.host_table_budget:
                unassigned.append(demand.vip_id)
                continue
            if demand.n_dips > self.dip_capacity:
                # Cannot fit any single HMux (would need TIP indirection);
                # handled by SMuxes.
                unassigned.append(demand.vip_id)
                continue
            choice = self.best_switch(demand, link_util, mem_util)
            if choice is None:
                unassigned.append(demand.vip_id)
                if self.config.stop_on_first_failure:
                    stopped = True
                continue
            switch_index, _mru = choice
            self._commit(demand, switch_index, link_util, mem_util)
            placed[demand.vip_id] = switch_index
        self.stats.record_solve(time.perf_counter() - started)
        return Assignment(
            topology=self.topology,
            config=self.config,
            vip_to_switch=placed,
            unassigned=unassigned,
            link_utilization=link_util,
            memory_utilization=mem_util,
            demands={d.vip_id: d for d in demands},
        )

    def best_switch(
        self,
        demand: VipDemand,
        link_util: np.ndarray,
        mem_util: np.ndarray,
    ) -> Optional[Tuple[int, float]]:
        """The feasible switch minimizing MRU for this demand, with its
        resulting MRU; None if every placement would exceed capacity."""
        if self._engine is not None:
            return self._engine.best_switch(self, demand, link_util, mem_util)
        candidates = self._effective_candidates(demand, link_util, mem_util)
        self.stats.candidate_evaluations += len(candidates)
        global_max = self._global_max(link_util, mem_util)
        scored = (
            (
                switch_index,
                self.placement_mru(
                    demand, switch_index, link_util, mem_util,
                    global_max=global_max,
                ),
            )
            for switch_index in candidates
        )
        return self._select_best(demand, scored)

    def _select_best(
        self,
        demand: VipDemand,
        scored: Iterable[Tuple[int, Optional[float]]],
    ) -> Optional[Tuple[int, float]]:
        """Shared selection over (candidate, MRU-or-None) pairs — both
        engines feed this one loop so epsilon comparisons and the seeded
        tie-break behave identically."""
        best: List[int] = []
        best_mru = float("inf")
        for switch_index, mru in scored:
            if mru is None:
                continue
            if mru < best_mru - 1e-12:
                best = [switch_index]
                best_mru = mru
            elif abs(mru - best_mru) <= 1e-12:
                best.append(switch_index)
        if not best or best_mru > 1.0:
            return None
        # "breaking ties at random" (S4.1).  The randomness is seeded per
        # VIP so the same VIP in an (almost) unchanged landscape breaks
        # its tie the same way across epochs — random placement without
        # artificial epoch-to-epoch churn.
        tie_rng = random.Random((self.config.seed << 20) ^ demand.vip_id)
        return tie_rng.choice(best), best_mru

    def placement_mru(
        self,
        demand: VipDemand,
        switch_index: int,
        link_util: np.ndarray,
        mem_util: np.ndarray,
        *,
        global_max: Optional[float] = None,
        link_subset: Optional[np.ndarray] = None,
    ) -> Optional[float]:
        """MRU after placing ``demand`` on ``switch_index`` (Equation 2).

        With ``link_subset`` (a boolean mask over links), the max is
        restricted to those links plus the switch memory — the
        container-local MRU of Figure 5.  Returns None when the placement
        is infeasible (memory overflow or unreachable legs).
        """
        mem_add = demand.n_dips / self.dip_capacity
        new_mem = mem_util[switch_index] + mem_add
        if new_mem > 1.0 + 1e-12:
            return None
        try:
            idx, util = self.calculator.load_vector(demand, switch_index)
        except UnreachableError:
            return None
        if link_subset is not None:
            keep = link_subset[idx]
            idx, util = idx[keep], util[keep]
        if len(idx):
            touched = link_util[idx] + util
            # Duplicate indices: the true post-placement utilization on a
            # link is U + sum of its contributions; aggregate first.
            if len(np.unique(idx)) != len(idx):
                agg: Dict[int, float] = {}
                for i, u in zip(idx.tolist(), util.tolist()):
                    agg[i] = agg.get(i, 0.0) + u
                link_peak = max(
                    link_util[i] + u for i, u in agg.items()
                )
            else:
                link_peak = float(touched.max())
        else:
            link_peak = 0.0
        base = (
            global_max if global_max is not None
            else self._global_max(link_util, mem_util)
        )
        return max(base, link_peak, new_mem)

    # -- internals -------------------------------------------------------------

    def _global_max(
        self, link_util: np.ndarray, mem_util: np.ndarray
    ) -> float:
        peak = float(link_util.max()) if len(link_util) else 0.0
        if len(mem_util):
            peak = max(peak, float(mem_util.max()))
        return peak

    def _commit(
        self,
        demand: VipDemand,
        switch_index: int,
        link_util: np.ndarray,
        mem_util: np.ndarray,
    ) -> None:
        self.calculator.apply(link_util, demand, switch_index)
        mem_util[switch_index] += demand.n_dips / self.dip_capacity

    def _effective_candidates(
        self,
        demand: VipDemand,
        link_util: np.ndarray,
        mem_util: np.ndarray,
    ) -> List[int]:
        if self.config.candidate_strategy == "exhaustive":
            return self._candidates
        # A VIP whose full volume exceeds a ToR's aggregate uplink
        # capacity can never live on a ToR (all its traffic must descend
        # through those uplinks); skip the per-container ToR scan.
        params = self.topology.params
        tor_capacity = (
            params.aggs_per_container * params.tor_agg_gbps * 1e9
            * self.config.link_headroom
        )
        skip_tors = demand.traffic_bps > tor_capacity
        # Container decomposition (S4.2, Figure 5): "assigning a VIP to
        # different ToR switches inside a container will only affect the
        # resource utilization inside the same container", and the only
        # links whose load depends on WHICH ToR is chosen are the ToR's
        # own Agg<->ToR links: every unit of the VIP's traffic descends
        # agg->t (split 1/|Aggs|) and its DIP-bound traffic ascends
        # t->agg.  So the best ToR per container falls out of the current
        # utilization of each ToR's adjacent links plus those two
        # t-independent increments — O(|Aggs|) per ToR, no path
        # computation.  Only the winner is evaluated exactly (globally),
        # alongside every Agg and Core.
        topo = self.topology
        failed = self.calculator.router.failed_switches
        mem_need = demand.n_dips / self.dip_capacity
        chosen: List[int] = []
        if not skip_tors:
            for container in range(topo.n_containers):
                best_tor = self._best_tor_in_container(
                    container, demand, link_util, mem_util, mem_need, failed,
                )
                if best_tor is not None:
                    chosen.append(best_tor)
        chosen.extend(
            s for s in self._candidates
            if topo.switch(s).kind in (SwitchKind.AGG, SwitchKind.CORE)
        )
        return chosen

    def _best_tor_in_container(
        self,
        container: int,
        demand: VipDemand,
        link_util: np.ndarray,
        mem_util: np.ndarray,
        mem_need: float,
        failed: FrozenSet[int],
    ) -> Optional[int]:
        topo = self.topology
        aggs = [a for a in topo.aggs(container) if a not in failed]
        if not aggs:
            return None
        headroom = self.config.link_headroom
        best_tor: Optional[int] = None
        best_score = float("inf")
        for tor in topo.tors(container):
            if tor in failed:
                continue
            if mem_util[tor] + mem_need > 1.0 + 1e-12:
                continue
            score = mem_util[tor] + mem_need
            for agg in aggs:
                down = topo.link_between(agg, tor)
                up = topo.link_between(tor, agg)
                share = demand.traffic_bps / len(aggs)
                down_util = link_util[down.index] + share / (
                    down.capacity * headroom
                )
                up_util = link_util[up.index] + share / (
                    up.capacity * headroom
                )
                score = max(score, down_util, up_util)
            if score < best_score:
                best_score = score
                best_tor = tor
        return best_tor
