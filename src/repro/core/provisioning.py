"""SMux provisioning: how many software Muxes Duet must deploy (S8.2).

Duet keeps a small SMux fleet as the backstop for three traffic classes:

1. **leftover** traffic of VIPs that could not be assigned to any HMux
   (switch memory / link bandwidth limits),
2. **failover** traffic when HMuxes die — provisioned for the worst of
   (a) an entire container failing or (b) three simultaneous switch
   failures, the worst cases observed in production (S5.1, S8.2),
3. **transition** traffic parked on SMuxes while VIPs migrate (S8.6).

The SMux count is the peak of those demands divided by per-SMux capacity;
Ananta, by contrast, must cover *all* VIP traffic in software.  Figure 16
compares the two at SMux capacities of 3.6 Gbps (measured, CPU-bound) and
10 Gbps (hypothetical, NIC-bound).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.assignment import Assignment
from repro.dataplane.smux import SMUX_CAPACITY_BPS
from repro.net.failures import (
    FailureScenario,
    container_failure,
    random_switch_failures,
)
from repro.net.topology import Topology
from repro.workload.vips import VipDemand


@dataclass(frozen=True)
class ProvisioningConfig:
    """Provisioning policy knobs."""

    smux_capacity_bps: float = SMUX_CAPACITY_BPS
    n_switch_failures: int = 3
    n_random_failure_samples: int = 10
    min_smuxes: int = 1
    seed: int = 0


@dataclass(frozen=True)
class SmuxProvisioning:
    """Result: the SMux count and the traffic components behind it."""

    n_smuxes: int
    leftover_bps: float
    worst_failover_bps: float
    migration_peak_bps: float
    worst_scenario: str

    @property
    def peak_bps(self) -> float:
        return self.leftover_bps + max(
            self.worst_failover_bps, self.migration_peak_bps
        )


def ananta_smux_count(
    total_traffic_bps: float,
    smux_capacity_bps: float = SMUX_CAPACITY_BPS,
    min_smuxes: int = 1,
) -> int:
    """SMuxes a pure software deployment needs: all VIP traffic in
    software, "such that no SMux receives traffic exceeding its
    capacity" with ECMP spreading it evenly (S8.2)."""
    if total_traffic_bps < 0:
        raise ValueError("traffic must be non-negative")
    return max(min_smuxes, math.ceil(total_traffic_bps / smux_capacity_bps))


def surviving_vip_traffic(
    demand: VipDemand,
    scenario: FailureScenario,
    topology: Topology,
) -> float:
    """Traffic of one VIP that still *exists* under a failure.

    A container failure "makes all the traffic with sources and
    destinations (DIPs) inside to disappear" (S8.5): ingress from dead
    racks is gone, and a VIP with no surviving DIP is dead entirely.
    """
    dead_tors = scenario.dead_tors(topology)
    alive_dips = sum(
        count for tor, count in demand.dip_tors if tor not in dead_tors
    )
    if alive_dips == 0:
        return 0.0
    alive_ingress = demand.internet_fraction + sum(
        fraction for tor, fraction in demand.ingress_racks
        if tor not in dead_tors
    )
    diffuse = demand.diffuse_intra_fraction
    if diffuse > 0:
        n_tors = len(topology.tors())
        alive_fraction = (n_tors - len(dead_tors)) / n_tors if n_tors else 0
        alive_ingress += diffuse * alive_fraction
    return demand.traffic_bps * alive_ingress


def failover_traffic(
    assignment: Assignment,
    scenario: FailureScenario,
    topology: Topology,
) -> float:
    """VIP traffic that falls back to the SMuxes under ``scenario``: the
    surviving traffic of every VIP assigned to a failed switch."""
    total = 0.0
    for vip_id, switch in assignment.vip_to_switch.items():
        if switch not in scenario.failed_switches:
            continue
        total += surviving_vip_traffic(
            assignment.demands[vip_id], scenario, topology
        )
    return total


def worst_container_failover(
    assignment: Assignment, topology: Topology
) -> Tuple[float, str]:
    """Worst failover traffic over all single-container failures."""
    worst, name = 0.0, "none"
    for container in range(topology.n_containers):
        scenario = container_failure(topology, container)
        traffic = failover_traffic(assignment, scenario, topology)
        if traffic > worst:
            worst, name = traffic, scenario.name
    return worst, name


def worst_switch_failover(
    assignment: Assignment,
    topology: Topology,
    n_failures: int = 3,
    *,
    n_samples: int = 0,
    seed: int = 0,
) -> Tuple[float, str]:
    """Worst failover traffic under ``n_failures`` simultaneous switch
    failures.

    The deterministic bound fails the ``n_failures`` switches carrying the
    most assigned VIP traffic (the adversarial worst case the paper
    provisions for).  With ``n_samples`` > 0, random scenarios are also
    drawn and the overall max is returned.
    """
    per_switch: Dict[int, float] = {}
    for vip_id, switch in assignment.vip_to_switch.items():
        per_switch[switch] = (
            per_switch.get(switch, 0.0)
            + assignment.demands[vip_id].traffic_bps
        )
    heaviest = sorted(per_switch, key=per_switch.get, reverse=True)
    worst_set = heaviest[:n_failures]
    if worst_set:
        scenario = FailureScenario(
            name=f"worst-{n_failures}-switches",
            failed_switches=frozenset(worst_set),
        )
        worst = failover_traffic(assignment, scenario, topology)
        name = scenario.name
    else:
        worst, name = 0.0, "none"
    rng = random.Random(seed)
    for _ in range(n_samples):
        scenario = random_switch_failures(topology, n_failures, rng)
        traffic = failover_traffic(assignment, scenario, topology)
        if traffic > worst:
            worst, name = traffic, scenario.name
    return worst, name


def duet_provisioning(
    assignment: Assignment,
    topology: Topology,
    config: ProvisioningConfig = ProvisioningConfig(),
    migration_peak_bps: float = 0.0,
) -> SmuxProvisioning:
    """SMuxes Duet needs for this assignment (S8.2, Figure 16/20c).

    The peak SMux load is the leftover (always in software) plus the
    worse of the failover and migration components; "the number of
    SMuxes needed is T / C_smux".
    """
    leftover = assignment.unassigned_traffic_bps()
    container_worst, container_name = worst_container_failover(
        assignment, topology
    )
    switch_worst, switch_name = worst_switch_failover(
        assignment,
        topology,
        config.n_switch_failures,
        n_samples=config.n_random_failure_samples,
        seed=config.seed,
    )
    if container_worst >= switch_worst:
        failover, scenario_name = container_worst, container_name
    else:
        failover, scenario_name = switch_worst, switch_name
    peak = leftover + max(failover, migration_peak_bps)
    count = max(config.min_smuxes, math.ceil(peak / config.smux_capacity_bps))
    return SmuxProvisioning(
        n_smuxes=count,
        leftover_bps=leftover,
        worst_failover_bps=failover,
        migration_peak_bps=migration_peak_bps,
        worst_scenario=scenario_name,
    )
