"""What-if capacity planning on top of the assignment engine.

Operators ask two questions the paper's machinery can answer directly:

* *How much VIP traffic can this fabric load-balance in hardware?* —
  find the largest traffic multiple at which the greedy assignment still
  keeps HMux coverage above a target (binary search; assignment is
  monotone in load for a fixed population shape).
* *What breaks first?* — at the found ceiling, report the binding
  resource (link class or switch memory) so the operator knows whether
  to buy bandwidth or bigger tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.assignment import Assignment, AssignmentConfig, GreedyAssigner
from repro.net.topology import SwitchKind, Topology
from repro.workload.vips import VipDemand


@dataclass(frozen=True)
class CapacityReport:
    """Result of a capacity search."""

    max_traffic_bps: float
    coverage_at_max: float
    mru_at_max: float
    binding_resource: str
    iterations: int

    def __str__(self) -> str:
        return (
            f"max HMux-served traffic ~{self.max_traffic_bps / 1e9:.1f} Gbps "
            f"(coverage {self.coverage_at_max:.1%}, MRU {self.mru_at_max:.2f}, "
            f"binding: {self.binding_resource})"
        )


def binding_resource(assignment: Assignment) -> str:
    """Which resource class holds the network-wide peak utilization."""
    topology = assignment.topology
    link_peak = (
        float(assignment.link_utilization.max())
        if len(assignment.link_utilization) else 0.0
    )
    mem_peak = (
        float(assignment.memory_utilization.max())
        if len(assignment.memory_utilization) else 0.0
    )
    if mem_peak >= link_peak:
        switch = int(np.argmax(assignment.memory_utilization))
        return f"switch-memory({topology.switch(switch).name})"
    link_index = int(np.argmax(assignment.link_utilization))
    link = topology.links[link_index]
    src = topology.switch(link.src).kind
    dst = topology.switch(link.dst).kind
    if SwitchKind.CORE in (src, dst):
        tier = "agg-core"
    else:
        tier = "tor-agg"
    return f"{tier}-link({link.src}->{link.dst})"


def find_capacity(
    topology: Topology,
    demands: Sequence[VipDemand],
    *,
    coverage_target: float = 0.99,
    config: AssignmentConfig = AssignmentConfig(),
    tolerance: float = 0.02,
    max_iterations: int = 20,
) -> CapacityReport:
    """Binary-search the largest traffic scaling with HMux coverage >=
    ``coverage_target``.

    ``demands`` fixes the population *shape* (relative volumes, DIP
    placement, ingress); only the absolute scale is swept.  The search
    brackets by doubling, then bisects until the bracket's relative width
    falls under ``tolerance``.
    """
    if not demands:
        raise ValueError("need at least one demand")
    if not 0.0 < coverage_target <= 1.0:
        raise ValueError("coverage_target must be in (0, 1]")
    base_total = sum(d.traffic_bps for d in demands)
    if base_total <= 0:
        raise ValueError("demands carry no traffic")

    def coverage_at(factor: float) -> Tuple[float, Assignment]:
        scaled = [d.scaled(factor) for d in demands]
        assignment = GreedyAssigner(topology, config).assign(scaled)
        return assignment.hmux_traffic_fraction(), assignment

    iterations = 0
    # Bracket: grow until coverage drops below target (or give up high).
    lo, hi = 0.0, 1.0
    cov, best = coverage_at(hi)
    iterations += 1
    while cov >= coverage_target and iterations < max_iterations:
        lo = hi
        hi *= 2.0
        cov, assignment = coverage_at(hi)
        iterations += 1
        if cov >= coverage_target:
            best = assignment
    if lo == 0.0:
        # Even the base load misses the target; bisect down from 1.
        lo, hi = 0.0, 1.0
    # Bisect.
    best_factor = lo
    while (hi - lo) > tolerance * max(hi, 1e-9) and iterations < max_iterations:
        mid = (lo + hi) / 2.0
        cov, assignment = coverage_at(mid)
        iterations += 1
        if cov >= coverage_target:
            lo = mid
            best = assignment
            best_factor = mid
        else:
            hi = mid
    if best_factor == 0.0:
        # Nothing met the target: report the base-load assignment.
        cov, best = coverage_at(1.0)
        iterations += 1
        return CapacityReport(
            max_traffic_bps=0.0,
            coverage_at_max=cov,
            mru_at_max=best.mru,
            binding_resource=binding_resource(best),
            iterations=iterations,
        )
    return CapacityReport(
        max_traffic_bps=base_total * best_factor,
        coverage_at_max=best.hmux_traffic_fraction(),
        mru_at_max=best.mru,
        binding_resource=binding_resource(best),
        iterations=iterations,
    )
