"""Duet core: VIP assignment, migration, provisioning, controller."""

from repro.core.assignment import (
    ASSIGN_ENGINES,
    Assignment,
    AssignmentConfig,
    AssignmentError,
    GreedyAssigner,
    LoadCalculator,
)
from repro.core.fastassign import (
    ASSIGN_STATS,
    AssignStats,
    FastAssignEngine,
    reset_assign_stats,
    stats_for,
)
from repro.core.baselines import FirstFitAssigner, RandomAssigner
from repro.core.capacity import CapacityReport, binding_resource, find_capacity
from repro.core.refine import AssignmentRefiner, RefinementResult
from repro.core.replication import ReplicatedAssigner, ReplicatedAssignment
from repro.core.snat import PortRange, SnatError, SnatPortManager, slots_of_dip
from repro.core.controller import (
    ControllerError,
    DuetController,
    ProgrammingStats,
    SwitchAgent,
    SwitchProgrammingError,
    VipRecord,
)
from repro.core.linkload import (
    LinkUtilizationComputer,
    UtilizationReport,
    default_smux_tors,
)
from repro.core.migration import (
    DEFAULT_STICKY_DELTA,
    MigrationPlan,
    MigrationStep,
    NonStickyMigrator,
    OneTimeMigrator,
    StepKind,
    StickyMigrator,
    diff_assignments,
)
from repro.core.provisioning import (
    ProvisioningConfig,
    SmuxProvisioning,
    ananta_smux_count,
    duet_provisioning,
    failover_traffic,
    surviving_vip_traffic,
    worst_container_failover,
    worst_switch_failover,
)

__all__ = [
    "ASSIGN_ENGINES",
    "ASSIGN_STATS",
    "AssignStats",
    "Assignment",
    "AssignmentConfig",
    "AssignmentError",
    "AssignmentRefiner",
    "FastAssignEngine",
    "CapacityReport",
    "ControllerError",
    "DEFAULT_STICKY_DELTA",
    "DuetController",
    "FirstFitAssigner",
    "GreedyAssigner",
    "LinkUtilizationComputer",
    "LoadCalculator",
    "MigrationPlan",
    "MigrationStep",
    "NonStickyMigrator",
    "OneTimeMigrator",
    "PortRange",
    "ProvisioningConfig",
    "RandomAssigner",
    "RefinementResult",
    "ReplicatedAssigner",
    "ReplicatedAssignment",
    "SmuxProvisioning",
    "SnatError",
    "SnatPortManager",
    "StepKind",
    "StickyMigrator",
    "ProgrammingStats",
    "SwitchAgent",
    "SwitchProgrammingError",
    "UtilizationReport",
    "VipRecord",
    "ananta_smux_count",
    "binding_resource",
    "default_smux_tors",
    "diff_assignments",
    "duet_provisioning",
    "failover_traffic",
    "find_capacity",
    "reset_assign_stats",
    "slots_of_dip",
    "stats_for",
    "surviving_vip_traffic",
    "worst_container_failover",
    "worst_switch_failover",
]
