"""Duet core: VIP assignment, migration, provisioning, controller."""

from repro.core.assignment import (
    Assignment,
    AssignmentConfig,
    AssignmentError,
    GreedyAssigner,
    LoadCalculator,
)
from repro.core.baselines import FirstFitAssigner, RandomAssigner
from repro.core.capacity import CapacityReport, binding_resource, find_capacity
from repro.core.refine import AssignmentRefiner, RefinementResult
from repro.core.replication import ReplicatedAssigner, ReplicatedAssignment
from repro.core.snat import PortRange, SnatError, SnatPortManager, slots_of_dip
from repro.core.controller import (
    ControllerError,
    DuetController,
    ProgrammingStats,
    SwitchAgent,
    SwitchProgrammingError,
    VipRecord,
)
from repro.core.linkload import (
    LinkUtilizationComputer,
    UtilizationReport,
    default_smux_tors,
)
from repro.core.migration import (
    DEFAULT_STICKY_DELTA,
    MigrationPlan,
    MigrationStep,
    NonStickyMigrator,
    OneTimeMigrator,
    StepKind,
    StickyMigrator,
    diff_assignments,
)
from repro.core.provisioning import (
    ProvisioningConfig,
    SmuxProvisioning,
    ananta_smux_count,
    duet_provisioning,
    failover_traffic,
    surviving_vip_traffic,
    worst_container_failover,
    worst_switch_failover,
)

__all__ = [
    "Assignment",
    "AssignmentConfig",
    "AssignmentError",
    "AssignmentRefiner",
    "CapacityReport",
    "ControllerError",
    "DEFAULT_STICKY_DELTA",
    "DuetController",
    "FirstFitAssigner",
    "GreedyAssigner",
    "LinkUtilizationComputer",
    "LoadCalculator",
    "MigrationPlan",
    "MigrationStep",
    "NonStickyMigrator",
    "OneTimeMigrator",
    "PortRange",
    "ProvisioningConfig",
    "RandomAssigner",
    "RefinementResult",
    "ReplicatedAssigner",
    "ReplicatedAssignment",
    "SmuxProvisioning",
    "SnatError",
    "SnatPortManager",
    "StepKind",
    "StickyMigrator",
    "ProgrammingStats",
    "SwitchAgent",
    "SwitchProgrammingError",
    "UtilizationReport",
    "VipRecord",
    "ananta_smux_count",
    "binding_resource",
    "default_smux_tors",
    "diff_assignments",
    "duet_provisioning",
    "failover_traffic",
    "find_capacity",
    "slots_of_dip",
    "surviving_vip_traffic",
    "worst_container_failover",
    "worst_switch_failover",
]
