"""The seed-sharded soak supervisor.

:class:`SoakFleet` fans a seed corpus out over ``multiprocessing``
workers (fork where available), supervises them with a per-seed timeout
and a bounded retry budget on the shared
:class:`~repro.control.retry.RetryPolicy` shape, quarantines poison
seeds with a replayable artifact, and merges the survivors through
:func:`~repro.fleet.merge.merge_results`.

Determinism contract: the merged report depends only on the chaos
configs, never on worker count, scheduling, or completion order.  The
serial path (``workers=1``) calls the exact same per-seed function
in-process, so ``SoakFleet(..., workers=1)`` is the reference the
parallel runs must match byte-for-byte.  Retry backoff is *accounted*
(``duet_fleet_retry_backoff_seconds_total``), never slept, matching the
modelled-time convention of the rest of the repo.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
from collections import deque
from dataclasses import dataclass
from multiprocessing import connection
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.chaos.engine import ChaosConfig, ChaosReport
from repro.control.retry import RetryPolicy
from repro.obs.registry import MetricsRegistry

from repro.fleet.merge import FleetReport, merge_results
from repro.fleet.metrics import FleetMetrics
from repro.fleet.worker import (
    quarantine_artifact,
    report_entry,
    run_seed_task,
    worker_entry,
)

#: One retry after the first failure, no modelled pause between tries:
#: a crashed soak worker is rarely transient, so the budget is small and
#: quarantine (with the artifact) is the real remediation.
DEFAULT_FLEET_RETRY = RetryPolicy(max_attempts=2, base_backoff_s=0.0)


def fleet_workers_from_env(default_cap: int = 8) -> int:
    """Worker count for CI/pytest call sites: ``REPRO_FLEET_WORKERS``
    when set, else the CPU count capped at ``default_cap``."""
    env = os.environ.get("REPRO_FLEET_WORKERS")
    if env:
        return max(1, int(env))
    return max(1, min(default_cap, os.cpu_count() or 1))


def _mp_context():
    methods = mp.get_all_start_methods()
    return mp.get_context("fork" if "fork" in methods else "spawn")


@dataclass(frozen=True)
class FleetConfig:
    """Supervision knobs (never part of the merged report's identity).

    ``crash_seeds`` / ``hang_seeds`` are deterministic worker-fault
    injection for tests and the CI quarantine smoke: the listed seeds'
    workers die with :data:`~repro.fleet.worker.CRASH_EXIT_CODE` (or
    sleep ``hang_s``) on every attempt, exercising the retry ->
    quarantine path without touching the chaos config.
    """

    workers: int = 1
    timeout_s: Optional[float] = None
    retry: RetryPolicy = DEFAULT_FLEET_RETRY
    quarantine_dir: Optional[str] = None
    crash_seeds: Tuple[int, ...] = ()
    hang_seeds: Tuple[int, ...] = ()
    hang_s: float = 3600.0

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("need at least one worker")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("timeout must be positive")
        if self.hang_seeds and self.timeout_s is None:
            raise ValueError("hang injection needs a timeout to matter")


class _Shard:
    """One in-flight worker attempt."""

    __slots__ = ("seed", "proc", "conn", "started")

    def __init__(self, seed, proc, conn, started) -> None:
        self.seed = seed
        self.proc = proc
        self.conn = conn
        self.started = started


class SoakFleet:
    """Run ``base_config`` across ``seeds``, sharded over workers."""

    def __init__(
        self,
        base_config: ChaosConfig,
        seeds: Sequence[int],
        *,
        fleet: FleetConfig = FleetConfig(),
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if not seeds:
            raise ValueError("need at least one seed")
        self.base_config = base_config
        self.seeds = sorted(set(seeds))
        self.fleet = fleet
        self.registry = registry if registry is not None else MetricsRegistry()
        self.metrics = FleetMetrics(self.registry)
        self.metrics.workers.set(fleet.workers)

    # -- task payloads ------------------------------------------------------

    def _config_for(self, seed: int) -> ChaosConfig:
        data = self.base_config.to_dict()
        data["seed"] = seed
        return ChaosConfig.from_dict(data)

    def _payload(self, seed: int) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"config": self._config_for(seed).to_dict()}
        if seed in self.fleet.crash_seeds:
            payload["crash"] = True
        if seed in self.fleet.hang_seeds:
            payload["hang_s"] = self.fleet.hang_s
        return payload

    def _injected(self, seed: int) -> bool:
        return seed in self.fleet.crash_seeds or seed in self.fleet.hang_seeds

    # -- run ----------------------------------------------------------------

    def run(self) -> FleetReport:
        results: Dict[int, Dict[str, Any]] = {}
        quarantined: Dict[int, Dict[str, Any]] = {}
        needs_processes = (
            self.fleet.workers > 1
            or self.fleet.crash_seeds
            or self.fleet.hang_seeds
        )
        if needs_processes:
            self._run_sharded(results, quarantined)
        else:
            for seed in self.seeds:
                started = time.perf_counter()
                results[seed] = run_seed_task(self._payload(seed))
                self.metrics.shard_seconds.observe(
                    time.perf_counter() - started
                )
                self.metrics.seeds_completed.inc()
        return merge_results(self.base_config, self.seeds, results, quarantined)

    def _run_sharded(
        self,
        results: Dict[int, Dict[str, Any]],
        quarantined: Dict[int, Dict[str, Any]],
    ) -> None:
        ctx = _mp_context()
        pending = deque(self.seeds)
        schedules = {seed: self.fleet.retry.start() for seed in self.seeds}
        attempts = {seed: 0 for seed in self.seeds}
        running: Dict[Any, _Shard] = {}

        def launch(seed: int) -> None:
            parent_conn, child_conn = ctx.Pipe(duplex=False)
            proc = ctx.Process(
                target=worker_entry,
                args=(self._payload(seed), child_conn),
                daemon=True,
            )
            attempts[seed] += 1
            proc.start()
            child_conn.close()
            # Keyed (and waited on) by the pipe, NOT the process
            # sentinel: a summary larger than the pipe buffer blocks the
            # child in send() until we read it, so the child only exits
            # after the recv — waiting for exit first would deadlock.
            # The pipe also signals EOF when the child dies abruptly.
            running[parent_conn] = _Shard(
                seed, proc, parent_conn, time.perf_counter()
            )

        def fail(shard: _Shard, reason: str, detail: str) -> None:
            self.metrics.worker_failures.labels(reason).inc()
            backoff = schedules[shard.seed].next_backoff()
            if backoff is not None:
                self.metrics.backoff_seconds.inc(backoff)
                self.metrics.seeds_retried.inc()
                pending.append(shard.seed)
                return
            self.metrics.seeds_quarantined.inc()
            artifact = quarantine_artifact(
                self._config_for(shard.seed),
                reason=reason,
                attempts=attempts[shard.seed],
                detail=detail,
                exitcode=shard.proc.exitcode,
            )
            record = dict(artifact["quarantine"])
            if self.fleet.quarantine_dir is not None:
                import json

                os.makedirs(self.fleet.quarantine_dir, exist_ok=True)
                path = os.path.join(
                    self.fleet.quarantine_dir, f"seed{shard.seed}.json",
                )
                with open(path, "w", encoding="utf-8") as handle:
                    json.dump(artifact, handle, indent=2, sort_keys=True)
                    handle.write("\n")
                record["artifact_path"] = path
            quarantined[shard.seed] = record

        while pending or running:
            while pending and len(running) < self.fleet.workers:
                launch(pending.popleft())
            wait_for = None
            if self.fleet.timeout_s is not None and running:
                next_deadline = min(
                    shard.started + self.fleet.timeout_s
                    for shard in running.values()
                )
                wait_for = max(0.0, next_deadline - time.perf_counter())
            ready = connection.wait(list(running), timeout=wait_for)
            now = time.perf_counter()
            for conn in ready:
                shard = running.pop(conn)
                outcome = None
                try:
                    outcome = conn.recv()
                except (EOFError, OSError):
                    outcome = None  # abrupt death: EOF, no result
                shard.proc.join()
                shard.conn.close()
                self.metrics.shard_seconds.observe(now - shard.started)
                if outcome is not None and outcome[0] == "ok":
                    results[shard.seed] = outcome[1]
                    self.metrics.seeds_completed.inc()
                elif outcome is not None:
                    fail(shard, "worker-error", outcome[1])
                else:
                    fail(
                        shard, "worker-crash",
                        f"worker died with exit code {shard.proc.exitcode} "
                        "before reporting a result",
                    )
            if self.fleet.timeout_s is not None:
                for conn, shard in list(running.items()):
                    if now - shard.started < self.fleet.timeout_s:
                        continue
                    running.pop(conn)
                    shard.proc.terminate()
                    shard.proc.join()
                    shard.conn.close()
                    self.metrics.shard_seconds.observe(now - shard.started)
                    fail(
                        shard, "timeout",
                        f"no result within {self.fleet.timeout_s:g}s; "
                        "worker killed",
                    )


def pool_map_reports(
    configs: Sequence[ChaosConfig],
    workers: Optional[int] = None,
) -> List[ChaosReport]:
    """Run full ChaosEngine soaks for ``configs`` across workers and
    return the complete :class:`ChaosReport` objects in input order.

    This is the pytest-tier entry point: the 200-seed corpus fixtures
    need live reports (traces, incident objects), not summaries.  A
    worker failure falls back to re-running that config in-process, so
    the result is always complete and identical to the serial loop.
    With ``workers=1`` (or one config) no processes are spawned.
    """
    workers = fleet_workers_from_env() if workers is None else max(1, workers)
    if workers == 1 or len(configs) <= 1:
        from repro.chaos.engine import ChaosEngine

        return [ChaosEngine(config).run() for config in configs]

    ctx = _mp_context()
    reports: List[Optional[ChaosReport]] = [None] * len(configs)
    pending = deque(range(len(configs)))
    running: Dict[Any, Tuple[int, Any, Any]] = {}
    while pending or running:
        while pending and len(running) < workers:
            index = pending.popleft()
            parent_conn, child_conn = ctx.Pipe(duplex=False)
            proc = ctx.Process(
                target=report_entry,
                args=(configs[index].to_dict(), child_conn),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            # Wait on the pipe, not the sentinel: a pickled report can
            # exceed the pipe buffer, blocking the child in send() until
            # the parent reads (see SoakFleet._run_sharded).
            running[parent_conn] = (index, proc, parent_conn)
        for ready in connection.wait(list(running)):
            index, proc, conn = running.pop(ready)
            outcome = None
            try:
                outcome = conn.recv()
            except (EOFError, OSError):
                outcome = None
            proc.join()
            conn.close()
            if outcome is not None and outcome[0] == "ok":
                reports[index] = outcome[1]
            else:
                from repro.chaos.engine import ChaosEngine

                reports[index] = ChaosEngine(configs[index]).run()
    return reports  # type: ignore[return-value]
