"""Seed-sharded soak fleet: fan a seed corpus out over workers.

Duet scales its slow software path by adding SMuxes behind a
deterministic control plane; this package does the same for the repo's
own validation tiers.  A :class:`SoakFleet` shards a seed corpus over
``multiprocessing`` workers — each running the existing
:class:`~repro.chaos.engine.ChaosEngine` / health / SLO pipeline
unchanged — and deterministically merges the per-seed results into one
:class:`FleetReport` that is byte-identical to the serial loop's
aggregate regardless of worker count or completion order:

* results are keyed and merged in **sorted seed order**, never arrival
  order, so float summation order is fixed;
* per-seed summaries contain **no wall-clock** — timing lives only in
  the supervisor's ``duet_fleet_*`` metrics family;
* a worker that crashes, raises, or hangs is retried on the shared
  :class:`~repro.control.retry.RetryPolicy` budget and then
  **quarantined** with a replayable artifact instead of failing the
  fleet run.
"""

from repro.fleet.merge import FleetReport, merge_results, summarize_report
from repro.fleet.metrics import FleetMetrics, register_fleet_metrics
from repro.fleet.orchestrator import (
    DEFAULT_FLEET_RETRY,
    FleetConfig,
    SoakFleet,
    fleet_workers_from_env,
    pool_map_reports,
)
from repro.fleet.worker import (
    load_quarantine,
    replay_quarantine,
    run_seed_task,
)

__all__ = [
    "DEFAULT_FLEET_RETRY",
    "FleetConfig",
    "FleetMetrics",
    "FleetReport",
    "SoakFleet",
    "fleet_workers_from_env",
    "load_quarantine",
    "merge_results",
    "pool_map_reports",
    "register_fleet_metrics",
    "replay_quarantine",
    "run_seed_task",
    "summarize_report",
]
