"""The ``duet_fleet_*`` metrics family (supervisor-side only).

Wall-clock is deliberately exiled here: the merged
:class:`~repro.fleet.merge.FleetReport` must be byte-identical across
worker counts, so per-shard timing, retries, and quarantines are
observed on the supervisor's registry instead of riding in the report.
"""

from __future__ import annotations

from repro.obs.registry import MetricsRegistry

#: Shard wall-clock buckets: a tiny unit-test seed takes ~100 ms, a
#: 200-event soak seconds, a wedged worker hits the timeout ceiling.
SHARD_SECONDS_BUCKETS = (
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0,
)


class FleetMetrics:
    """Typed handles for every fleet instrument on one registry."""

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        self.seeds_completed = registry.counter(
            "duet_fleet_seeds_completed_total",
            "Seeds whose workers returned a summary",
        )
        self.seeds_retried = registry.counter(
            "duet_fleet_seeds_retried_total",
            "Seed attempts re-dispatched after a worker failure",
        )
        self.seeds_quarantined = registry.counter(
            "duet_fleet_seeds_quarantined_total",
            "Seeds quarantined after exhausting the retry budget",
        )
        self.worker_failures = registry.counter(
            "duet_fleet_worker_failures_total",
            "Worker attempt failures, by reason",
            ("reason",),
        )
        self.shard_seconds = registry.histogram(
            "duet_fleet_shard_seconds",
            "Per-shard (one seed attempt) wall-clock",
            buckets=SHARD_SECONDS_BUCKETS,
        )
        self.backoff_seconds = registry.counter(
            "duet_fleet_retry_backoff_seconds_total",
            "Modelled retry backoff accounted (never slept)",
        )
        self.workers = registry.gauge(
            "duet_fleet_workers",
            "Worker processes the supervisor fans out over",
        )


def register_fleet_metrics(registry: MetricsRegistry) -> FleetMetrics:
    """Idempotently create the family on ``registry``."""
    return FleetMetrics(registry)
