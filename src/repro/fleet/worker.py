"""The per-seed unit of fleet work, runnable in-process or in a worker.

A worker runs the existing :class:`~repro.chaos.engine.ChaosEngine`
pipeline for one seed and returns a JSON-safe, wall-clock-free summary
(:func:`run_seed_task`).  The same function runs in the serial path and
in forked workers, which is what makes the merged fleet report
byte-identical across worker counts.

Fault-injection hooks (``crash`` / ``hang_s`` in the task payload) let
tests and the CI quarantine smoke kill a worker deterministically; they
are supervisor-injected and never part of the chaos config itself.
"""

from __future__ import annotations

import json
import os
import time
import traceback
from typing import Any, Dict, Optional

from repro.chaos.engine import ChaosConfig, ChaosEngine, ChaosReport

#: Exit code of a deliberately crashed worker (CI quarantine smoke).
CRASH_EXIT_CODE = 86


def _jsonify(value: Any) -> Any:
    """Canonical JSON-safe copy (tuples -> lists, keys stringified)."""
    return json.loads(json.dumps(value, sort_keys=True, default=str))


def summarize_report(report: ChaosReport) -> Dict[str, Any]:
    """A JSON-safe, deterministic digest of one seed's chaos run.

    Deliberately excludes anything wall-clock shaped: the digest must be
    identical whether the seed ran serially, sharded, first, or last.
    """
    return {
        "seed": report.config.seed,
        "ok": report.ok,
        "steps_run": report.steps_run,
        "event_counts": _jsonify(report.event_counts),
        "violations": [str(v) for v in report.violations],
        "first_violation_step": report.first_violation_step,
        "crashes": report.crashes,
        "stats": _jsonify(report.stats),
        "channel": _jsonify(report.channel),
        "metric_deltas": [
            [name, delta] for name, delta in report.metric_deltas
        ],
        "health": None if report.health is None else _jsonify(report.health),
        "slo": None if report.slo is None else _jsonify(report.slo),
        "incidents": [_jsonify(inc.to_dict()) for inc in report.incidents],
        "artifact": (
            None if report.artifact is None
            else _jsonify({
                "config": report.artifact.config,
                "events": report.artifact.events,
                "violation_step": report.artifact.violation_step,
                "violations": report.artifact.violations,
                "metric_deltas": [
                    [n, d] for n, d in report.artifact.metric_deltas
                ],
            })
        ),
    }


def run_seed_task(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Execute one task payload: apply injection hooks, run the engine,
    return the summary.  ``payload["config"]`` is a ChaosConfig dict
    with the seed already set."""
    if payload.get("crash"):
        # Simulated worker death: bypass every finally/atexit, exactly
        # like an OOM kill.  Only the supervisor path sets this.
        os._exit(CRASH_EXIT_CODE)
    hang_s = payload.get("hang_s")
    if hang_s:
        time.sleep(hang_s)
    config = ChaosConfig.from_dict(payload["config"])
    return summarize_report(ChaosEngine(config).run())


def worker_entry(payload: Dict[str, Any], conn) -> None:
    """Process entry point: run the task, ship ``("ok", summary)`` or
    ``("error", traceback)`` back over the pipe."""
    try:
        result = run_seed_task(payload)
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        finally:
            conn.close()
        return
    conn.send(("ok", result))
    conn.close()


def report_entry(config_dict: Dict[str, Any], conn) -> None:
    """Process entry point for :func:`pool_map_reports`: run the engine
    and ship the full (pickled) ChaosReport back."""
    try:
        report = ChaosEngine(ChaosConfig.from_dict(config_dict)).run()
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        finally:
            conn.close()
        return
    conn.send(("ok", report))
    conn.close()


# -- quarantine artifacts ---------------------------------------------------


def quarantine_artifact(
    config: ChaosConfig,
    *,
    reason: str,
    attempts: int,
    detail: str,
    exitcode: Optional[int],
) -> Dict[str, Any]:
    """The replayable record of a poison seed: the full config (so
    ``replay_quarantine`` / ``repro chaos --replay`` rebuilds the exact
    run) plus what the supervisor observed."""
    return {
        "quarantine": {
            "seed": config.seed,
            "reason": reason,
            "attempts": attempts,
            "detail": detail,
            "exitcode": exitcode,
        },
        "config": config.to_dict(),
    }


def load_quarantine(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if "quarantine" not in data or "config" not in data:
        raise ValueError(f"{path} is not a fleet quarantine artifact")
    return data


def replay_quarantine(artifact) -> ChaosReport:
    """Re-run a quarantined seed in-process from its artifact (a path or
    a loaded dict): deterministic seeding means the replay reproduces
    whatever the dead worker was doing."""
    if isinstance(artifact, str):
        artifact = load_quarantine(artifact)
    config = ChaosConfig.from_dict(artifact["config"])
    return ChaosEngine(config).run()
