"""Deterministic merge of per-seed soak results into one fleet report.

The merge is a pure function of the (seed -> summary) mapping: results
are folded in ascending seed order, so counter totals, float sums, and
list concatenations come out bit-identical no matter how many workers
produced them or in what order they finished.  Nothing wall-clock
shaped is admitted — timing belongs to the ``duet_fleet_*`` metrics
family, not the report.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.chaos.engine import ChaosConfig

from repro.fleet.worker import summarize_report  # noqa: F401  (re-export)


def _fold(into: Dict[str, Any], part: Dict[str, Any]) -> None:
    """Accumulate ``part`` into ``into``: numbers sum, dicts recurse,
    lists concatenate, anything else keeps the first value seen.  Called
    in sorted seed order, so float accumulation order is fixed."""
    for key, value in part.items():
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            into[key] = into.get(key, 0) + value
        elif isinstance(value, dict):
            child = into.setdefault(key, {})
            _fold(child, value)
        elif isinstance(value, list):
            into.setdefault(key, []).extend(value)
        elif key not in into:
            into[key] = value


@dataclass
class FleetReport:
    """The merged outcome of one fleet run.

    ``results`` holds the per-seed summaries (sorted by seed) of every
    seed that completed; ``quarantined`` the supervisor records (sorted
    by seed) of seeds that exhausted their retry budget.  ``totals``
    aggregates counters/ledgers/scorecards across completed seeds.
    """

    config: Dict[str, Any]
    seeds: List[int]
    results: List[Dict[str, Any]]
    quarantined: List[Dict[str, Any]] = field(default_factory=list)
    totals: Dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when no completed seed violated an invariant.  A
        quarantined seed does not fail the run — it is preserved for
        triage instead."""
        return all(r["ok"] for r in self.results)

    @property
    def violating_seeds(self) -> List[int]:
        return [r["seed"] for r in self.results if not r["ok"]]

    def result_for(self, seed: int) -> Optional[Dict[str, Any]]:
        for result in self.results:
            if result["seed"] == seed:
                return result
        return None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "config": self.config,
            "seeds": self.seeds,
            "results": self.results,
            "quarantined": self.quarantined,
            "totals": self.totals,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def sha256(self) -> str:
        """Content hash of the canonical JSON — the CI determinism gate
        compares this across worker counts."""
        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json() + "\n")

    @classmethod
    def load(cls, path: str) -> "FleetReport":
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        return cls(
            config=data["config"],
            seeds=list(data["seeds"]),
            results=list(data["results"]),
            quarantined=list(data.get("quarantined", [])),
            totals=dict(data.get("totals", {})),
        )


def merge_results(
    base_config: ChaosConfig,
    seeds: Sequence[int],
    results: Dict[int, Dict[str, Any]],
    quarantined: Dict[int, Dict[str, Any]],
) -> FleetReport:
    """Fold per-seed summaries into a :class:`FleetReport`.

    ``results`` / ``quarantined`` are keyed by seed; every seed in
    ``seeds`` must appear in exactly one of them.
    """
    ordered_seeds = sorted(seeds)
    missing = [
        s for s in ordered_seeds if s not in results and s not in quarantined
    ]
    if missing:
        raise ValueError(f"seeds neither completed nor quarantined: {missing}")

    ordered = [results[s] for s in ordered_seeds if s in results]
    totals: Dict[str, Any] = {
        "seeds_total": len(ordered_seeds),
        "seeds_completed": len(ordered),
        "seeds_quarantined": len(ordered_seeds) - len(ordered),
        "seeds_with_violations": [r["seed"] for r in ordered if not r["ok"]],
        "violations": sum(len(r["violations"]) for r in ordered),
        "steps_run": sum(r["steps_run"] for r in ordered),
        "crashes": sum(r["crashes"] for r in ordered),
        "event_counts": {},
        "stats": {},
        "channel": {},
    }
    for result in ordered:
        _fold(totals["event_counts"], result["event_counts"])
        _fold(totals["stats"], result["stats"])
        _fold(totals["channel"], result["channel"])

    health_parts = [r["health"] for r in ordered if r.get("health")]
    if health_parts:
        health: Dict[str, Any] = {}
        for part in health_parts:
            _fold(health, part)
        totals["health"] = health
    slo_parts = [
        r["slo"]["scorecard"] for r in ordered
        if r.get("slo") and "scorecard" in r["slo"]
    ]
    if slo_parts:
        scorecard: Dict[str, Any] = {}
        for part in slo_parts:
            _fold(scorecard, part)
        incidents = scorecard.get("incidents", 0)
        eligible = scorecard.get("eligible_faults", 0)
        scorecard["precision"] = (
            scorecard.get("true_positives", 0) / incidents
            if incidents else 1.0
        )
        scorecard["recall"] = (
            scorecard.get("matched_faults", 0) / eligible
            if eligible else 1.0
        )
        totals["slo_scorecard"] = scorecard

    config = base_config.to_dict()
    config.pop("seed", None)  # per-seed; the corpus is the seeds list
    return FleetReport(
        config=config,
        seeds=ordered_seeds,
        results=ordered,
        quarantined=[quarantined[s] for s in ordered_seeds if s in quarantined],
        totals=totals,
    )
