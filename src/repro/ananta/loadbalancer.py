"""Ananta: the pure software load balancer baseline (paper S2.1).

Ananta is the comparator throughout Duet's evaluation: a three-tier
design of router ECMP, a fleet of SMuxes each holding *all* VIP-to-DIP
mappings, and per-server host agents.  Every SMux announces every VIP, so
router ECMP sprays incoming VIP traffic evenly over the fleet, and DSR
keeps return traffic off the muxes.

This module materializes that system so examples and tests can run
packets through it, and exposes the fleet-sizing rule used in Figure 16:
enough SMuxes "such that no SMux receives traffic exceeding its
capacity".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dataplane.hashing import five_tuple_hash
from repro.dataplane.hostagent import HostAgent
from repro.dataplane.packet import Packet
from repro.dataplane.smux import SMUX_CAPACITY_BPS, SMux
from repro.net.addressing import Prefix, format_ip
from repro.net.bgp import MuxRef, VipRouteTable
from repro.workload.vips import (
    SMUX_AGGREGATES,
    SMUX_POOL,
    VipPopulation,
    host_address,
)


class AnantaError(Exception):
    """Invalid Ananta operation."""


def required_smuxes(
    total_traffic_bps: float,
    smux_capacity_bps: float = SMUX_CAPACITY_BPS,
    *,
    redundancy: int = 1,
) -> int:
    """Fleet size so that even ECMP spreading keeps every SMux within
    capacity, plus optional N+k redundancy."""
    if total_traffic_bps < 0:
        raise AnantaError("traffic must be non-negative")
    base = math.ceil(total_traffic_bps / smux_capacity_bps)
    return max(1, base) + max(0, redundancy - 1)


class AnantaLoadBalancer:
    """A materialized Ananta deployment over a VIP population."""

    def __init__(
        self,
        population: VipPopulation,
        n_smuxes: int,
        *,
        hash_seed: int = 0,
    ) -> None:
        if n_smuxes < 1:
            raise AnantaError("need at least one SMux")
        self.population = population
        self.hash_seed = hash_seed
        self.route_table = VipRouteTable()
        self.smuxes: List[SMux] = [
            SMux(i, SMUX_POOL.network + i, hash_seed=hash_seed)
            for i in range(n_smuxes)
        ]
        self.host_agents: Dict[int, HostAgent] = {}
        self._dip_to_server: Dict[int, int] = {}
        for vip in population:
            dip_addrs = [d.addr for d in vip.dips]
            for smux in self.smuxes:
                smux.set_vip(vip.addr, dip_addrs)
            for dip in vip.dips:
                agent = self.host_agents.get(dip.server_id)
                if agent is None:
                    agent = HostAgent(host_address(dip.server_id))
                    agent.hash_seed = hash_seed
                    self.host_agents[dip.server_id] = agent
                agent.register_dip(dip.addr, vip.addr)
                self._dip_to_server[dip.addr] = dip.server_id
        for smux in self.smuxes:
            ref = MuxRef.smux(smux.smux_id)
            for aggregate in SMUX_AGGREGATES:
                self.route_table.announce(aggregate, ref)

    # -- data path ----------------------------------------------------------

    def forward(self, packet: Packet) -> Tuple[Packet, int]:
        """Route one packet: ECMP to an SMux, encapsulate, deliver via
        the host agent.  Returns (delivered packet, smux id)."""
        flow_hash = five_tuple_hash(packet.flow, self.hash_seed ^ 0xECC)
        mux = self.route_table.resolve(packet.flow.dst_ip, flow_hash)
        smux = next(s for s in self.smuxes if s.smux_id == mux.ident)
        encapped = smux.process(packet)
        if encapped is None:
            raise AnantaError(
                f"no mapping for VIP {format_ip(packet.flow.dst_ip)}"
            )
        server = self._dip_to_server[encapped.outer[0].dst_ip]
        delivered = self.host_agents[server].receive(encapped)
        return delivered, smux.smux_id

    def fail_smux(self, smux_id: int) -> None:
        """ECMP re-spreads over the survivors; VIPs stay available."""
        alive = [s for s in self.smuxes if s.smux_id != smux_id]
        if len(alive) == len(self.smuxes):
            raise AnantaError(f"unknown SMux {smux_id}")
        if not alive:
            raise AnantaError("cannot fail the last SMux")
        self.route_table.withdraw_all(MuxRef.smux(smux_id))
        self.smuxes = alive

    def smux_load_split(self, n_packets: int = 1000, seed: int = 7) -> Dict[int, int]:
        """How ECMP spreads synthetic flows across the fleet (used to
        check the even-spreading assumption of the sizing rule)."""
        import random

        from repro.dataplane.packet import make_udp_packet
        from repro.workload.vips import CLIENT_POOL

        rng = random.Random(seed)
        counts: Dict[int, int] = {s.smux_id: 0 for s in self.smuxes}
        vips = [v.addr for v in self.population]
        for _ in range(n_packets):
            packet = make_udp_packet(
                CLIENT_POOL.network + rng.randrange(1 << 16),
                vips[rng.randrange(len(vips))],
                rng.randrange(1024, 65536),
                80,
            )
            flow_hash = five_tuple_hash(packet.flow, self.hash_seed ^ 0xECC)
            mux = self.route_table.resolve(packet.flow.dst_ip, flow_hash)
            counts[mux.ident] += 1
        return counts
