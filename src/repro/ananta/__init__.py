"""Ananta software load balancer (the paper's baseline)."""

from repro.ananta.loadbalancer import (
    AnantaError,
    AnantaLoadBalancer,
    required_smuxes,
)

__all__ = ["AnantaError", "AnantaLoadBalancer", "required_smuxes"]
