"""Probe-driven failure detection and autonomous remediation.

Duet's availability story (paper S5.3, Figures 12/19) assumes failures
are *detected* — switch monitoring plus Ananta-style DIP health probes —
before the controller withdraws routes and falls back to SMuxes.  This
package closes that loop without oracle knowledge: a
:class:`ProbeScheduler` drives pingmesh-style heartbeats against
HMuxes, SMuxes and DIPs on a simulated clock, a :class:`HealthDetector`
turns probe outcomes into suspicion scores (EWMA loss + consecutive-miss
fast path) with gray-failure detection corroborated against the metrics
registry, a quarantine state machine
(``healthy -> suspect -> quarantined -> probation -> healthy``) adds
hysteresis, and a :class:`RemediationLoop` translates verdicts into the
existing journaled controller lifecycle ops.

The :class:`FaultPlane` is the injection side: it makes components fail
*silently* (observable through probes and telemetry only — the
controller is never told), which is what the chaos engine's no-oracle
mode drives.  :class:`HealthScorecard` judges the loop against the
fault plane's ground-truth log: every injected fault detected within
budget, no healthy component stuck in quarantine, no false positives.
"""

from repro.health.detector import (
    HealthConfig,
    HealthDetector,
    HealthState,
    Verdict,
    VerdictKind,
)
from repro.health.faults import FaultPlane, FaultRecord
from repro.health.probes import ProbeNetwork, ProbeOutcome, ProbeScheduler, SimClock
from repro.health.remediation import HealthMonitor, RemediationLoop
from repro.health.invariants import HealthScorecard

__all__ = [
    "FaultPlane",
    "FaultRecord",
    "HealthConfig",
    "HealthDetector",
    "HealthMonitor",
    "HealthScorecard",
    "HealthState",
    "ProbeNetwork",
    "ProbeOutcome",
    "ProbeScheduler",
    "RemediationLoop",
    "SimClock",
    "Verdict",
    "VerdictKind",
]
