"""Pingmesh-style probing of muxes and DIPs on a simulated clock.

Three probe families, mirroring what Duet's production ancestors run:

* **VIP probes** — end-to-end pings through the real forwarding path
  (route table -> mux -> host agent), every ``probe_period_s`` like the
  paper's 3 ms testbed pingmesh (Figures 11-13).  These populate
  per-VIP :class:`~repro.sim.pingmesh.PingSeries` and are the only
  signal that can see a gray failure.
* **Liveness heartbeats** — per-switch and per-SMux reachability pings
  to the device CPU.  A silently dead device misses them; a gray device
  (broken only for some forwarding) still answers, which is what makes
  gray failures gray.
* **DIP health probes** — the Ananta-style host-agent health feed.

Probes consult the :class:`~repro.health.faults.FaultPlane` *before*
entering a mux, so a packet the physical network would have dropped
never increments mux counters — exactly the counter-vs-offered-load gap
the detector's telemetry corroboration keys on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.controller import ControllerError, DuetController
from repro.dataplane.hashing import five_tuple_hash
from repro.dataplane.hostagent import HostAgentError
from repro.dataplane.packet import Packet, make_tcp_packet
from repro.health.faults import FaultPlane, dip_key, smux_key, switch_key
from repro.net.bgp import MuxKind, RouteResolutionError
from repro.sim.pingmesh import PingSeries, ProbeResult
from repro.workload.vips import CLIENT_POOL

#: Paper testbed cadence: one ping every 3 ms (S5.1, Figure 11).
DEFAULT_PROBE_PERIOD_S = 0.003

#: Nominal one-way service latency by mux kind; the testbed measured
#: HMux forwarding in hardware (~us) and SMux in software (~ms tail).
_HMUX_BASE_LATENCY_S = 150e-6
_SMUX_BASE_LATENCY_S = 600e-6


class SimClock:
    """A trivially advancing simulated clock shared by the monitor."""

    def __init__(self, start_s: float = 0.0) -> None:
        self.now_s = start_s

    def advance(self, dt_s: float) -> float:
        self.now_s += dt_s
        return self.now_s


@dataclass(frozen=True)
class ProbeOutcome:
    """One probe's verdict, tagged with enough context to attribute it."""

    kind: str  # "switch" | "smux" | "dip" | "vip"
    target: str  # canonical target key ("switch:3", "dip:0x...", ...)
    t: float
    ok: bool
    vip: Optional[int] = None
    # For VIP probes: the mux that served (or should have served) it.
    mux_kind: Optional[str] = None
    mux_ident: Optional[int] = None
    # True when the loss happened *after* the mux (unhealthy DIP): the
    # mux counted the packet, so the drop must not be blamed on it.
    post_mux: bool = False
    latency_s: Optional[float] = None


class ProbeNetwork:
    """Sends individual probes; accounts per-(mux, VIP) offered load.

    The per-target ``sent``/``answered`` counters below count probes the
    prober *offered* to each mux.  The metrics registry counts packets
    the mux actually *processed* — the detector cross-checks the two to
    tell mux-level loss (never counted) from post-mux loss (counted,
    then failed at the host agent).
    """

    #: Per-VIP probe history kept in memory; older results are trimmed
    #: so an arbitrarily long soak holds bounded state.  Generous vs the
    #: detector's windows (~15-30 rounds), so trimming never costs
    #: evidence.
    MAX_SERIES_RESULTS = 4096

    def __init__(
        self,
        controller: DuetController,
        fault_plane: FaultPlane,
        seed: int = 0,
    ) -> None:
        self.controller = controller
        self.fault_plane = fault_plane
        self.rng = random.Random(seed ^ 0x9B0E)
        self.series: Dict[int, PingSeries] = {}
        # (mux_key, vip) -> probes offered / answered, cumulative.
        self.offered: Dict[Tuple[str, int], int] = {}
        self.answered: Dict[Tuple[str, int], int] = {}

    def _series(self, vip: int) -> PingSeries:
        series = self.series.get(vip)
        if series is None:
            series = PingSeries(vip=vip, label=f"vip-{vip:#x}")
            self.series[vip] = series
        elif len(series.results) >= 2 * self.MAX_SERIES_RESULTS:
            del series.results[:-self.MAX_SERIES_RESULTS]
        return series

    def _latency(self, kind: MuxKind) -> float:
        base = _HMUX_BASE_LATENCY_S if kind is MuxKind.HMUX else _SMUX_BASE_LATENCY_S
        return base * (0.9 + 0.2 * self.rng.random())

    # -- probe families -----------------------------------------------------

    def probe_switch(self, index: int, t: float) -> ProbeOutcome:
        ok = not self.fault_plane.switch_heartbeat_drops(index)
        return ProbeOutcome(kind="switch", target=switch_key(index), t=t, ok=ok)

    def probe_smux(self, smux_id: int, t: float) -> ProbeOutcome:
        ok = not self.fault_plane.smux_heartbeat_drops(smux_id)
        return ProbeOutcome(kind="smux", target=smux_key(smux_id), t=t, ok=ok)

    def probe_dip(self, dip: int, vip: int, healthy: bool, t: float) -> ProbeOutcome:
        return ProbeOutcome(
            kind="dip", target=dip_key(dip), t=t, ok=healthy, vip=vip
        )

    def probe_vip(self, vip_addr: int, t: float, seq: int) -> ProbeOutcome:
        """One end-to-end ping.  ``seq`` varies the flow so consecutive
        probes ECMP-spread across SMuxes and exercise distinct hashes."""
        packet = make_tcp_packet(
            CLIENT_POOL.network + 0x7000 + (seq % 251),
            vip_addr,
            20000 + (seq % 8191),
            80,
        )
        flow_hash = five_tuple_hash(
            packet.flow, self.controller.hash_seed ^ 0xECC
        )
        try:
            mux = self.controller.route_table.resolve(vip_addr, flow_hash)
        except RouteResolutionError:
            self._series(vip_addr).add(ProbeResult(t, None, "none"))
            return ProbeOutcome(
                kind="vip", target=f"vip:{vip_addr:#x}", t=t, ok=False,
                vip=vip_addr,
            )

        mkey = f"{mux.kind.value}:{mux.ident}"
        self.offered[(mkey, vip_addr)] = self.offered.get((mkey, vip_addr), 0) + 1

        if mux.kind is MuxKind.HMUX:
            physically_dropped = self.fault_plane.hmux_drops(mux.ident, vip_addr)
        else:
            physically_dropped = self.fault_plane.smux_drops(mux.ident)

        if physically_dropped:
            self._series(vip_addr).add(ProbeResult(t, None, mux.kind.value))
            return ProbeOutcome(
                kind="vip", target=f"vip:{vip_addr:#x}", t=t, ok=False,
                vip=vip_addr, mux_kind=mux.kind.value, mux_ident=mux.ident,
            )

        post_mux = False
        try:
            self.controller.forward(packet)
            ok = True
        except HostAgentError:
            ok = False
            post_mux = True
        except ControllerError:
            ok = False

        latency = self._latency(mux.kind) if ok else None
        self._series(vip_addr).add(
            ProbeResult(t, latency, mux.kind.value if ok or post_mux else "none")
        )
        if ok:
            self.answered[(mkey, vip_addr)] = (
                self.answered.get((mkey, vip_addr), 0) + 1
            )
        return ProbeOutcome(
            kind="vip", target=f"vip:{vip_addr:#x}", t=t, ok=ok,
            vip=vip_addr, mux_kind=mux.kind.value, mux_ident=mux.ident,
            post_mux=post_mux, latency_s=latency,
        )


@dataclass
class ProbeRound:
    """Everything the scheduler observed in one probe period."""

    t: float
    outcomes: List[ProbeOutcome] = field(default_factory=list)
    # vip -> [dip, ...] as of this round (control-plane intent, used by
    # the detector to attribute DIP-level loss).
    vip_dips: Dict[int, List[int]] = field(default_factory=dict)


class ProbeScheduler:
    """Drives one full probe sweep per period over every target.

    Iteration orders are sorted so a chaos replay with the same seed
    produces bit-identical probe streams.
    """

    def __init__(
        self,
        network: ProbeNetwork,
        vip_probes_per_round: int = 1,
    ) -> None:
        self.network = network
        self.vip_probes_per_round = vip_probes_per_round
        self._seq = 0
        self.rounds_run = 0

    def run_round(self, t: float) -> ProbeRound:
        controller = self.network.controller
        round_ = ProbeRound(t=t)
        out = round_.outcomes

        for index in sorted(controller.switch_agents):
            out.append(self.network.probe_switch(index, t))

        for smux in sorted(controller.smuxes, key=lambda s: s.smux_id):
            out.append(self.network.probe_smux(smux.smux_id, t))

        records = controller.records()
        dip_to_vip: Dict[int, int] = {}
        for addr in sorted(records):
            round_.vip_dips[addr] = [dip.addr for dip in records[addr].dips]
            for dip in records[addr].dips:
                dip_to_vip[dip.addr] = addr
        for server in sorted(controller.host_agents):
            report = controller.host_agents[server].health_report()
            for dip in sorted(report):
                vip = dip_to_vip.get(dip)
                if vip is None:
                    continue
                out.append(self.network.probe_dip(dip, vip, report[dip], t))

        for addr in sorted(records):
            for _ in range(self.vip_probes_per_round):
                out.append(self.network.probe_vip(addr, t, self._seq))
                self._seq += 1

        self.rounds_run += 1
        return round_
