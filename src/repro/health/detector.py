"""Suspicion scoring and the quarantine state machine.

Detection runs entirely on probe outcomes plus the metrics registry —
no oracle state.  Two signals feed per-target suspicion:

* an **EWMA loss score** (a discretised phi-accrual: instead of
  modelling inter-arrival times, each probe period contributes its
  loss indicator, smoothed by ``ewma_alpha``), and
* a **consecutive-miss fast path** so hard-down targets are caught in
  ``consecutive_miss_fast`` periods instead of waiting for the EWMA to
  saturate.

Both drive one state machine per target::

    healthy -> suspect -> quarantined -> probation -> healthy
                  \\______(suspicion clears)____________/

with hysteresis at every edge: distinct up (``suspect_threshold``) and
down (``clear_threshold``) thresholds, confirmation dwell before
quarantining, a minimum quarantine dwell plus success streak before
probation, a clean probation dwell before restore, and exponential
dwell backoff on relapse so a flapping device converges to mostly-out
instead of oscillating at probe frequency.

**Gray failures** — partial per-VIP loss on a switch whose liveness
heartbeats still pass — use a separate per-(switch, VIP) loss track
built from end-to-end VIP probes, cross-checked two ways before a
verdict:

* *DIP suppression*: if any DIP behind the VIP is currently failing its
  Ananta health probes, the loss is attributed to the DIP, not the
  switch.
* *Telemetry corroboration*: the offered-probe count is compared with
  ``duet_hmux_vip_packets_total`` from the obs registry.  Mux-level
  loss means packets vanished *before* the counter (counter flat while
  probes were offered); post-mux loss increments the counter first and
  is never blamed on the switch.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.health.faults import gray_key, switch_key
from repro.health.probes import ProbeRound
from repro.net.addressing import format_ip


class HealthState(enum.Enum):
    HEALTHY = "healthy"
    SUSPECT = "suspect"
    QUARANTINED = "quarantined"
    PROBATION = "probation"
    #: Terminal: the target was removed from service (reaped DIP,
    #: decommissioned SMux) and will never be probed again.
    RETIRED = "retired"


class VerdictKind(enum.Enum):
    """What the detector wants the remediation loop to do."""

    QUARANTINE_SWITCH = "quarantine-switch"  # -> fail_switch (SMux fallback)
    PROBATION_SWITCH = "probation-switch"  # -> recover_switch
    RESTORE_SWITCH = "restore-switch"  # -> rebalance (re-home VIPs)
    REQUARANTINE_SWITCH = "requarantine-switch"  # probation failed -> fail_switch
    QUARANTINE_SMUX = "quarantine-smux"  # -> fail_smux (+ replacement)
    QUARANTINE_DIP = "quarantine-dip"  # -> dip_failure (reap)
    GRAY_VIP = "gray-vip"  # -> migrate_vip off the gray switch


@dataclass(frozen=True)
class Verdict:
    kind: VerdictKind
    target: str
    t: float
    #: Switch index / SMux id for mux verdicts; DIP address for DIP ones.
    ident: int
    #: The affected VIP for GRAY_VIP / QUARANTINE_DIP verdicts.
    vip: Optional[int] = None
    detail: str = ""


@dataclass
class HealthConfig:
    """Tuning knobs; see docs/OPERATIONS.md ("Tuning the detector")."""

    probe_period_s: float = 0.003
    vip_probes_per_round: int = 1
    ewma_alpha: float = 0.35
    suspect_threshold: float = 0.45
    clear_threshold: float = 0.10
    consecutive_miss_fast: int = 3
    confirm_rounds: int = 2
    #: Evidence bar at confirmation time: quarantine needs a consecutive
    #: miss run or a near-saturated EWMA, not a lingering just-suspect
    #: score — scattered benign background drops can hold the EWMA above
    #: ``suspect_threshold`` without the target ever being down.
    confirm_threshold: float = 0.70
    quarantine_min_rounds: int = 4
    probation_entry_streak: int = 3
    probation_rounds: int = 4
    relapse_backoff: float = 2.0
    relapse_backoff_cap: float = 8.0
    gray_loss_threshold: float = 0.30
    gray_min_probes: int = 6
    #: Lost probes required in the evidence window before a gray verdict
    #: — a single unlucky probe must never trigger a migration.
    gray_min_losses: int = 3
    #: Rolling evidence window (in probed rounds) for the gray loss
    #: counts and the counter-corroboration fraction; half the detection
    #: budget so clean history ages out well before the budget expires.
    gray_window_rounds: int = 15
    gray_escalate_vips: int = 3
    #: Rounds after which a remediated gray (switch, VIP) pair may be
    #: flagged again (guards against verdict spam while migration heals).
    gray_cooldown_rounds: int = 40
    detection_budget_rounds: int = 30
    recovery_budget_rounds: int = 80

    @property
    def detection_budget_s(self) -> float:
        return self.detection_budget_rounds * self.probe_period_s

    @property
    def recovery_budget_s(self) -> float:
        return self.recovery_budget_rounds * self.probe_period_s

    def to_dict(self) -> Dict[str, float]:
        return {
            "probe_period_s": self.probe_period_s,
            "vip_probes_per_round": self.vip_probes_per_round,
            "ewma_alpha": self.ewma_alpha,
            "suspect_threshold": self.suspect_threshold,
            "clear_threshold": self.clear_threshold,
            "consecutive_miss_fast": self.consecutive_miss_fast,
            "confirm_rounds": self.confirm_rounds,
            "confirm_threshold": self.confirm_threshold,
            "quarantine_min_rounds": self.quarantine_min_rounds,
            "probation_entry_streak": self.probation_entry_streak,
            "probation_rounds": self.probation_rounds,
            "relapse_backoff": self.relapse_backoff,
            "relapse_backoff_cap": self.relapse_backoff_cap,
            "gray_loss_threshold": self.gray_loss_threshold,
            "gray_min_probes": self.gray_min_probes,
            "gray_min_losses": self.gray_min_losses,
            "gray_window_rounds": self.gray_window_rounds,
            "gray_escalate_vips": self.gray_escalate_vips,
            "gray_cooldown_rounds": self.gray_cooldown_rounds,
            "detection_budget_rounds": self.detection_budget_rounds,
            "recovery_budget_rounds": self.recovery_budget_rounds,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, float]) -> "HealthConfig":
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in data.items() if k in known})


@dataclass
class TargetTrack:
    """Mutable detector state for one probe target."""

    key: str
    kind: str  # "switch" | "smux" | "dip"
    ident: int
    state: HealthState = HealthState.HEALTHY
    ewma: float = 0.0
    consec_fail: int = 0
    consec_ok: int = 0
    rounds_in_state: int = 0
    entered_state_t: float = 0.0
    times_quarantined: int = 0
    #: Effective quarantine dwell; doubles on relapse (capped).
    dwell_rounds: int = 0
    vip: Optional[int] = None  # for DIP tracks

    def note(self, ok: bool, alpha: float) -> None:
        loss = 0.0 if ok else 1.0
        self.ewma = (1.0 - alpha) * self.ewma + alpha * loss
        if ok:
            self.consec_ok += 1
            self.consec_fail = 0
        else:
            self.consec_fail += 1
            self.consec_ok = 0

    def enter(self, state: HealthState, t: float) -> None:
        self.state = state
        self.rounds_in_state = 0
        self.entered_state_t = t


@dataclass
class GrayTrack:
    """Per-(switch, VIP) end-to-end loss evidence.

    All evidence is held in a *rolling window* of recent probed rounds
    (``gray_window_rounds``), not cumulative counters: a long clean
    history must not dilute fresh loss, or the corroboration fraction
    stays above the gate for longer than the detection budget.
    """

    ewma: float = 0.0
    #: One entry per probed round: [offered, mux-level losses, packets
    #: ``duet_hmux_vip_packets_total`` counted during the round].  The
    #: counted column uses in-round registry deltas only, so concurrent
    #: workload traffic cannot pollute the comparison.
    window: List[List[float]] = field(default_factory=list)
    #: Round index of the last probe; a long gap (VIP served elsewhere,
    #: switch quarantined) makes the old evidence stale.
    last_round: int = 0

    @property
    def offered(self) -> int:
        return int(sum(entry[0] for entry in self.window))

    @property
    def losses(self) -> int:
        return int(sum(entry[1] for entry in self.window))

    @property
    def counted(self) -> float:
        return sum(entry[2] for entry in self.window)


class HealthDetector:
    """Consumes probe rounds, maintains per-target FSMs, emits verdicts."""

    def __init__(self, config: HealthConfig, registry=None) -> None:
        self.config = config
        self.registry = registry
        self.tracks: Dict[str, TargetTrack] = {}
        self.gray_tracks: Dict[Tuple[int, int], GrayTrack] = {}
        #: (switch, vip) -> round index when flagged; cooldown gate.
        self.gray_flagged: Dict[Tuple[int, int], int] = {}
        self.transitions: List[Dict[str, object]] = []
        self.rounds_seen = 0
        self.verdicts_emitted = 0

    # -- track bookkeeping --------------------------------------------------

    def track(self, key: str) -> Optional[TargetTrack]:
        return self.tracks.get(key)

    def _track(self, key: str, kind: str, ident: int, t: float) -> TargetTrack:
        tr = self.tracks.get(key)
        if tr is None:
            tr = TargetTrack(key=key, kind=kind, ident=ident, entered_state_t=t)
            tr.dwell_rounds = self.config.quarantine_min_rounds
            self.tracks[key] = tr
        return tr

    def retire(self, key: str, t: float) -> None:
        tr = self.tracks.get(key)
        if tr is not None and tr.state is not HealthState.RETIRED:
            self._transition(tr, HealthState.RETIRED, t, "removed from service")

    def adopt_quarantine(self, key: str, kind: str, ident: int, t: float) -> None:
        """An operator (not this detector) already failed the target:
        track it as quarantined so probation can bring it back, but do
        not count a detection."""
        tr = self._track(key, kind, ident, t)
        if tr.state in (HealthState.HEALTHY, HealthState.SUSPECT):
            tr.times_quarantined += 1
            self._transition(tr, HealthState.QUARANTINED, t, "adopted external failure")

    def _transition(
        self, tr: TargetTrack, to: HealthState, t: float, detail: str = ""
    ) -> None:
        self.transitions.append({
            "t": t,
            "target": tr.key,
            "from": tr.state.value,
            "to": to.value,
            "detail": detail,
        })
        tr.enter(to, t)

    def state_counts(self) -> Dict[str, int]:
        counts = {state.value: 0 for state in HealthState}
        for tr in self.tracks.values():
            counts[tr.state.value] += 1
        return counts

    # -- the round ----------------------------------------------------------

    def observe(
        self,
        round_,
        hmux_deltas: Optional[Dict[Tuple[str, str], float]] = None,
    ) -> List[Verdict]:
        """Digest one :class:`~repro.health.probes.ProbeRound`.

        ``hmux_deltas`` maps (switch-label, vip-label) to how much
        ``duet_hmux_vip_packets_total`` advanced *during* this round's
        probes — the monitor snapshots the registry on both sides of
        the probe sweep so the delta is purely probe-driven.
        """
        t = round_.t
        self.rounds_seen += 1
        verdicts: List[Verdict] = []
        dip_failing: Set[int] = set()

        by_kind: Dict[str, List] = {"switch": [], "smux": [], "dip": [], "vip": []}
        for out in round_.outcomes:
            by_kind[out.kind].append(out)

        for out in by_kind["dip"]:
            tr = self._track(out.target, "dip", int(out.target.split(":")[1], 16), t)
            tr.vip = out.vip
            if tr.state is HealthState.RETIRED:
                continue
            tr.note(out.ok, self.config.ewma_alpha)
            if not out.ok or tr.consec_fail > 0:
                dip_failing.add(out.vip)
            verdicts.extend(self._step_dip(tr, t))

        for out in by_kind["switch"]:
            tr = self._track(out.target, "switch", int(out.target.split(":")[1]), t)
            if tr.state is HealthState.RETIRED:
                continue
            tr.note(out.ok, self.config.ewma_alpha)
            verdicts.extend(self._step_mux(tr, t))

        for out in by_kind["smux"]:
            tr = self._track(out.target, "smux", int(out.target.split(":")[1]), t)
            if tr.state is HealthState.RETIRED:
                continue
            tr.note(out.ok, self.config.ewma_alpha)
            verdicts.extend(self._step_mux(tr, t))

        verdicts.extend(
            self._observe_gray(by_kind["vip"], dip_failing, hmux_deltas, t)
        )

        self.verdicts_emitted += len(verdicts)
        return verdicts

    # -- mux state machine --------------------------------------------------

    def _suspicious(self, tr: TargetTrack) -> bool:
        cfg = self.config
        return (
            tr.consec_fail >= cfg.consecutive_miss_fast
            or tr.ewma >= cfg.suspect_threshold
        )

    def _quiet(self, tr: TargetTrack) -> bool:
        return tr.ewma < self.config.clear_threshold and tr.consec_ok >= 2

    def _step_mux(self, tr: TargetTrack, t: float) -> List[Verdict]:
        cfg = self.config
        tr.rounds_in_state += 1
        out: List[Verdict] = []

        if tr.state is HealthState.HEALTHY:
            if self._suspicious(tr):
                self._transition(tr, HealthState.SUSPECT, t, f"ewma={tr.ewma:.2f}")

        elif tr.state is HealthState.SUSPECT:
            if self._quiet(tr):
                self._transition(tr, HealthState.HEALTHY, t, "suspicion cleared")
            elif tr.rounds_in_state >= cfg.confirm_rounds and (
                tr.consec_fail >= cfg.consecutive_miss_fast
                or tr.ewma >= cfg.confirm_threshold
            ):
                tr.times_quarantined += 1
                self._transition(
                    tr, HealthState.QUARANTINED, t,
                    f"confirmed after {tr.rounds_in_state} rounds",
                )
                kind = (
                    VerdictKind.QUARANTINE_SWITCH
                    if tr.kind == "switch"
                    else VerdictKind.QUARANTINE_SMUX
                )
                out.append(Verdict(kind, tr.key, t, tr.ident, detail="liveness"))

        elif tr.state is HealthState.QUARANTINED:
            if tr.kind == "smux":
                # SMuxes are replaced, not rehabilitated: the remediation
                # loop retires the track once fail_smux lands.
                return out
            if (
                tr.rounds_in_state >= tr.dwell_rounds
                and tr.consec_ok >= cfg.probation_entry_streak
            ):
                self._transition(
                    tr, HealthState.PROBATION, t,
                    f"dwelled {tr.rounds_in_state} rounds, "
                    f"{tr.consec_ok} clean probes",
                )
                # Clean slate: the EWMA is still saturated from the dead
                # period, and probation must judge fresh evidence only —
                # otherwise one benign background drop relapses the track.
                tr.ewma = 0.0
                tr.consec_fail = 0
                out.append(Verdict(
                    VerdictKind.PROBATION_SWITCH, tr.key, t, tr.ident,
                    detail="probes recovered",
                ))

        elif tr.state is HealthState.PROBATION:
            if self._suspicious(tr):
                tr.dwell_rounds = min(
                    int(tr.dwell_rounds * cfg.relapse_backoff),
                    int(cfg.quarantine_min_rounds * cfg.relapse_backoff_cap),
                )
                tr.times_quarantined += 1
                self._transition(
                    tr, HealthState.QUARANTINED, t,
                    f"relapse; dwell now {tr.dwell_rounds} rounds",
                )
                out.append(Verdict(
                    VerdictKind.REQUARANTINE_SWITCH, tr.key, t, tr.ident,
                    detail="probation probes failing",
                ))
            elif tr.rounds_in_state >= cfg.probation_rounds:
                self._transition(tr, HealthState.HEALTHY, t, "probation complete")
                out.append(Verdict(
                    VerdictKind.RESTORE_SWITCH, tr.key, t, tr.ident,
                    detail="clean probation",
                ))
        return out

    # -- DIP state machine --------------------------------------------------

    def _step_dip(self, tr: TargetTrack, t: float) -> List[Verdict]:
        cfg = self.config
        tr.rounds_in_state += 1
        out: List[Verdict] = []
        if tr.state is HealthState.HEALTHY:
            if tr.consec_fail >= cfg.consecutive_miss_fast:
                self._transition(
                    tr, HealthState.SUSPECT, t, f"{tr.consec_fail} misses"
                )
        elif tr.state is HealthState.SUSPECT:
            if tr.consec_ok >= 1:
                # A flap: hysteresis saved the DIP from being reaped.
                self._transition(tr, HealthState.HEALTHY, t, "flap suppressed")
            elif tr.rounds_in_state >= cfg.confirm_rounds:
                tr.times_quarantined += 1
                self._transition(tr, HealthState.QUARANTINED, t, "confirmed down")
                out.append(Verdict(
                    VerdictKind.QUARANTINE_DIP, tr.key, t, tr.ident,
                    vip=tr.vip, detail="host health probes failing",
                ))
        return out

    # -- gray-failure detection --------------------------------------------

    def _observe_gray(
        self,
        vip_outcomes: List,
        dip_failing: Set[int],
        hmux_deltas: Optional[Dict[Tuple[str, str], float]],
        t: float,
    ) -> List[Verdict]:
        cfg = self.config
        out: List[Verdict] = []
        touched: Set[Tuple[int, int]] = set()

        for o in vip_outcomes:
            if o.mux_kind != "hmux" or o.mux_ident is None:
                continue
            key = (o.mux_ident, o.vip)
            gt = self.gray_tracks.get(key)
            if gt is None:
                gt = self.gray_tracks[key] = GrayTrack()
            elif self.rounds_seen - gt.last_round > 2:
                # The pair saw no probes for a while (VIP was served
                # elsewhere, switch was quarantined): evidence gathered
                # before the gap is stale — start a fresh window.
                gt = self.gray_tracks[key] = GrayTrack()
            if gt.last_round != self.rounds_seen or not gt.window:
                gt.window.append([0.0, 0.0, 0.0])
                del gt.window[:-cfg.gray_window_rounds]
            gt.last_round = self.rounds_seen
            # Post-mux drops (host agent) are the DIP's fault; count the
            # probe as *delivered by the mux* for gray purposes.
            mux_ok = o.ok or o.post_mux
            gt.ewma = (1.0 - cfg.ewma_alpha) * gt.ewma + (
                cfg.ewma_alpha * (0.0 if mux_ok else 1.0)
            )
            gt.window[-1][0] += 1
            if not mux_ok:
                gt.window[-1][1] += 1
            touched.add(key)

        if hmux_deltas:
            for key in touched:
                delta = hmux_deltas.get((str(key[0]), format_ip(key[1])))
                if delta:
                    self.gray_tracks[key].window[-1][2] += delta

        for key in sorted(touched):
            switch, vip = key
            gt = self.gray_tracks[key]
            if gt.offered < cfg.gray_min_probes:
                continue
            if gt.losses < cfg.gray_min_losses:
                continue
            if gt.ewma < cfg.gray_loss_threshold:
                continue
            flagged_at = self.gray_flagged.get(key)
            if (
                flagged_at is not None
                and self.rounds_seen - flagged_at < cfg.gray_cooldown_rounds
            ):
                continue
            # Only gray if the switch itself still answers heartbeats.
            sw = self.tracks.get(switch_key(switch))
            if sw is None or sw.state is not HealthState.HEALTHY:
                continue
            # DIP suppression: loss explainable by a failing DIP.
            if vip in dip_failing:
                continue
            # Telemetry corroboration: the registry counter must agree
            # that the mux processed materially fewer packets than the
            # prober offered (mux-level loss is invisible to counters;
            # post-mux loss is not).
            if self.registry is not None and gt.offered > 0:
                processed_fraction = gt.counted / gt.offered
                if processed_fraction > 1.0 - cfg.gray_loss_threshold / 2:
                    continue
            self.gray_flagged[key] = self.rounds_seen
            out.append(Verdict(
                VerdictKind.GRAY_VIP, gray_key(switch, vip), t, switch,
                vip=vip,
                detail=f"loss ewma={gt.ewma:.2f} over {gt.offered} probes",
            ))
            # Reset the evidence window after a verdict.
            self.gray_tracks[key] = GrayTrack()
            # Escalation: several gray VIPs on one switch means the
            # switch, not the VIP placement, is broken.
            recent = [
                k for k, r in self.gray_flagged.items()
                if k[0] == switch
                and self.rounds_seen - r < cfg.gray_cooldown_rounds
            ]
            if len(recent) >= cfg.gray_escalate_vips and sw.state is HealthState.HEALTHY:
                sw.times_quarantined += 1
                self._transition(
                    sw, HealthState.QUARANTINED, t,
                    f"gray escalation: {len(recent)} VIPs",
                )
                out.append(Verdict(
                    VerdictKind.QUARANTINE_SWITCH, sw.key, t, switch,
                    detail="gray escalation",
                ))
        return out
