"""Ground-truth scoring of the detect -> failover -> recover loop.

The scorecard is the *judge*, not a participant: it reads the fault
plane's injection log (which the detector never sees) and compares it
with the detector's transition history and the remediation action log.
The chaos engine runs it at the end of a no-oracle soak.

Invariants:

* **fault-detected** — every injected silent/gray fault is detected
  within the detection budget.  Faults that cleared before a detector
  could plausibly have seen them (shorter than the budget) are excused
  as flaps — *not* detecting those is the hysteresis working.
* **detection-budget** — detection latency for detected faults stays
  within ``detection_budget_s``.
* **no-stuck-quarantine** — once a fault clears, its target must leave
  quarantine (and the controller's failed set) within the recovery
  budget.  A healthy device never rusts in quarantine.
* **fault-remediated** — a detected, still-active switch/SMux fault is
  actually acted on: the switch is failed in the controller (routes
  withdrawn, SMux fallback serving) / the SMux is out of the fleet.
* **no-false-positive** — no quarantine verdict for a mux that had no
  active fault at verdict time (external/adopted failures excluded).

``sync()`` also feeds detection latencies into the obs registry
(``duet_health_detection_latency_seconds`` and
``duet_health_false_positives_total``) so detection quality is
scrapeable like every other signal.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.chaos.invariants import Violation
from repro.health.detector import HealthConfig, HealthState
from repro.health.faults import (
    GRAY,
    SMUX_SILENT,
    SWITCH_SILENT,
    FaultPlane,
    FaultRecord,
)
from repro.health.remediation import HealthMonitor

#: Buckets sized for probe-period-scale latencies (seconds).
DETECTION_LATENCY_BUCKETS = (
    0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0,
)


class HealthScorecard:
    """Pairs injected faults with detections and judges the loop."""

    def __init__(
        self,
        fault_plane: FaultPlane,
        monitor: HealthMonitor,
        config: Optional[HealthConfig] = None,
        registry=None,
    ) -> None:
        self.fault_plane = fault_plane
        self.monitor = monitor
        self.config = config or monitor.config
        self.registry = registry
        self.detection_latencies: List[float] = []
        self.false_positives: List[Dict[str, object]] = []
        self._transitions_scanned = 0
        #: Per-gray-fault exposure-clock start (see :meth:`check`).
        self._gray_exposure_start: Dict[str, float] = {}
        self._latency_hist = None
        self._fp_counter = None
        if registry is not None:
            self._latency_hist = registry.histogram(
                "duet_health_detection_latency_seconds",
                "Time from silent fault injection to quarantine/gray verdict.",
                buckets=DETECTION_LATENCY_BUCKETS,
            )
            self._fp_counter = registry.counter(
                "duet_health_false_positives_total",
                "Quarantine verdicts with no matching injected fault.",
            )

    # -- pairing ------------------------------------------------------------

    def _detection_events(self) -> List[Dict[str, object]]:
        """Detector events that count as 'the fault was noticed':
        entering quarantine (not by adoption), or a gray verdict."""
        events: List[Dict[str, object]] = []
        for tr in self.monitor.detector.transitions:
            if (
                tr["to"] == HealthState.QUARANTINED.value
                and "adopted" not in str(tr["detail"])
            ):
                events.append({
                    "t": tr["t"], "target": tr["target"], "kind": "quarantine",
                })
        for entry in self.monitor.timeline:
            if entry.get("type") == "verdict" and entry.get("kind") == "gray-vip":
                events.append({
                    "t": entry["t"], "target": entry["target"], "kind": "gray",
                })
        events.sort(key=lambda e: (e["t"], e["target"]))
        return events

    def _matches(self, fault: FaultRecord, event: Dict[str, object]) -> bool:
        if event["target"] == fault.target:
            return True
        if fault.kind == GRAY:
            # A switch-wide gray fault (gray:<switch>:*) is detected by
            # per-VIP verdicts (gray:<switch>:<vip>); escalation may also
            # quarantine the whole switch instead.
            switch = fault.target.split(":")[1]
            target = str(event["target"])
            return (
                target.startswith(f"gray:{switch}:")
                or target == f"switch:{switch}"
            )
        return False

    def _gray_dormant(self, fault: FaultRecord, controller) -> bool:
        """A gray fault no VIP traffic traverses is undetectable by
        end-to-end probing — and harmless.  Excused from the budget."""
        if fault.kind != GRAY or controller is None:
            return False
        parts = fault.target.split(":")
        switch = int(parts[1])
        scope = parts[2]
        records = controller.records()
        if scope == "*":
            return not any(
                rec.assigned_switch == switch for rec in records.values()
            )
        vip = int(scope, 16)
        record = records.get(vip)
        return record is None or record.assigned_switch != switch

    def sync(self) -> List[Tuple[str, float]]:
        """Pair new detections with open faults.  Returns newly paired
        (target, latency_s) tuples; feeds the registry metrics."""
        events = self._detection_events()
        newly: List[Tuple[str, float]] = []
        for fault in self.fault_plane.log:
            if fault.detected_t is not None:
                continue
            horizon = fault.cleared_t
            for event in events:
                if event["t"] < fault.injected_t:
                    continue
                if horizon is not None and event["t"] > horizon:
                    continue
                if self._matches(fault, event):
                    fault.detected_t = event["t"]
                    start = max(
                        fault.injected_t,
                        self._gray_exposure_start.get(
                            fault.target, fault.injected_t
                        ),
                    )
                    latency = max(0.0, event["t"] - start)
                    self.detection_latencies.append(latency)
                    newly.append((fault.target, latency))
                    if self._latency_hist is not None:
                        self._latency_hist.observe(latency)
                    break
        return newly

    # -- judgement ----------------------------------------------------------

    def check(self, controller=None) -> List[Violation]:
        self.sync()
        if controller is None:
            controller = self.monitor.controller
        cfg = self.config
        now = self.monitor.clock.now_s
        violations: List[Violation] = []

        for fault in self.fault_plane.log:
            end = fault.cleared_t if fault.cleared_t is not None else now
            if fault.detected_t is None and fault.kind == GRAY:
                # Exposure only accrues while some VIP's traffic actually
                # traverses the gray path; dormant periods (the VIP was
                # rebalanced elsewhere) reset the clock.
                if fault.active and self._gray_dormant(fault, controller):
                    self._gray_exposure_start[fault.target] = now
                start = self._gray_exposure_start.get(
                    fault.target, fault.injected_t
                )
            else:
                start = fault.injected_t
            exposure = end - start
            if fault.detected_t is None:
                if exposure <= cfg.detection_budget_s:
                    # Flap (cleared early) or still within budget.
                    continue
                if self._gray_dormant(fault, controller):
                    continue
                violations.append(Violation(
                    "fault-detected",
                    f"{fault.kind} on {fault.target} injected at "
                    f"t={fault.injected_t:.3f}s never detected "
                    f"({exposure:.3f}s exposure, budget "
                    f"{cfg.detection_budget_s:.3f}s)",
                ))
                continue
            latency = fault.detected_t - max(
                fault.injected_t,
                self._gray_exposure_start.get(fault.target, fault.injected_t),
            )
            if latency > cfg.detection_budget_s:
                violations.append(Violation(
                    "detection-budget",
                    f"{fault.kind} on {fault.target} detected after "
                    f"{latency:.3f}s (budget {cfg.detection_budget_s:.3f}s)",
                ))

        violations.extend(self._check_stuck_quarantine(now))
        violations.extend(self._check_remediated(controller))
        violations.extend(self._check_false_positives())
        return violations

    def _check_stuck_quarantine(self, now: float) -> List[Violation]:
        cfg = self.config
        out: List[Violation] = []
        for key, track in self.monitor.detector.tracks.items():
            if track.kind != "switch":
                continue
            if track.state not in (HealthState.QUARANTINED, HealthState.PROBATION):
                continue
            fault = self.fault_plane.record_for(track.key)
            gray_active = any(
                sw == track.ident for sw, _ in self.fault_plane.gray
            )
            if fault is not None or gray_active:
                continue  # fault still active; quarantine is correct
            # How long has the target been faultless while quarantined?
            cleared = [
                rec.cleared_t for rec in self.fault_plane.log
                if rec.target == track.key and rec.cleared_t is not None
            ]
            since = max([track.entered_state_t] + cleared)
            if now - since > cfg.recovery_budget_s:
                out.append(Violation(
                    "no-stuck-quarantine",
                    f"{key} healthy since t={since:.3f}s but still "
                    f"{track.state.value} at t={now:.3f}s "
                    f"(budget {cfg.recovery_budget_s:.3f}s)",
                ))
        return out

    def _check_remediated(self, controller) -> List[Violation]:
        if controller is None:
            controller = self.monitor.controller
        out: List[Violation] = []
        for fault in self.fault_plane.log:
            if not fault.active or fault.detected_t is None:
                continue
            if fault.kind == SWITCH_SILENT:
                index = int(fault.target.split(":")[1])
                if index not in controller.failed_switches:
                    out.append(Violation(
                        "fault-remediated",
                        f"{fault.target} detected at t={fault.detected_t:.3f}s "
                        "but its routes are still announced",
                    ))
                elif fault.remediated_t is None:
                    fault.remediated_t = fault.detected_t
            elif fault.kind == SMUX_SILENT:
                smux_id = int(fault.target.split(":")[1])
                if any(s.smux_id == smux_id for s in controller.smuxes):
                    out.append(Violation(
                        "fault-remediated",
                        f"{fault.target} detected at t={fault.detected_t:.3f}s "
                        "but still in the SMux fleet",
                    ))
                elif fault.remediated_t is None:
                    fault.remediated_t = fault.detected_t
        return out

    def _check_false_positives(self) -> List[Violation]:
        out: List[Violation] = []
        for tr in self.monitor.detector.transitions[self._transitions_scanned:]:
            if tr["to"] != HealthState.QUARANTINED.value:
                continue
            if "adopted" in str(tr["detail"]):
                continue
            target = str(tr["target"])
            if not (target.startswith("switch:") or target.startswith("smux:")):
                continue
            t = float(tr["t"])
            covered = False
            for fault in self.fault_plane.log:
                # A fault "covers" a verdict from its injection until one
                # detection budget after it clears: evidence gathered
                # while the fault was live can legitimately ripen into a
                # verdict a few confirmation rounds after a flap ends.
                horizon = (
                    fault.cleared_t + self.config.detection_budget_s
                    if fault.cleared_t is not None else t
                )
                if fault.injected_t <= t <= horizon:
                    if fault.target == target:
                        covered = True
                        break
                    if fault.kind == GRAY and target == (
                        "switch:" + fault.target.split(":")[1]
                    ):
                        covered = True
                        break
            if not covered:
                fp = {"t": t, "target": target, "detail": tr["detail"]}
                self.false_positives.append(fp)
                if self._fp_counter is not None:
                    self._fp_counter.inc()
                out.append(Violation(
                    "no-false-positive",
                    f"{target} quarantined at t={t:.3f}s with no active "
                    f"injected fault ({tr['detail']})",
                ))
        self._transitions_scanned = len(self.monitor.detector.transitions)
        return out

    # -- reporting ----------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        lats = sorted(self.detection_latencies)
        median = lats[len(lats) // 2] if lats else None
        return {
            "faults_injected": len(self.fault_plane.log),
            "faults_detected": sum(
                1 for f in self.fault_plane.log if f.detected_t is not None
            ),
            "detection_latencies_s": lats,
            "median_detection_latency_s": median,
            "max_detection_latency_s": lats[-1] if lats else None,
            "false_positives": len(self.false_positives),
            "detection_budget_s": self.config.detection_budget_s,
            "recovery_budget_s": self.config.recovery_budget_s,
        }
