"""Silent dataplane faults: the injection side of no-oracle chaos.

The chaos engine's original event path mutates the controller directly
(``fail_switch`` / ``cut_link``), which means the controller is told
about every fault the instant it happens.  Real failures are not so
polite: a switch dies but its routes stay announced (a blackhole until
monitoring notices), or it keeps answering pings while dropping a
fraction of one VIP's traffic (a gray failure).

The :class:`FaultPlane` models exactly that gap.  It sits between the
probe network and the controller's dataplane objects and decides, per
probe, whether the packet would have survived the *physical* network —
without ever touching controller state.  The controller only learns of
a fault when the detector quarantines the target and the remediation
loop invokes a lifecycle op.

Every injection and clearance is recorded with its simulated timestamp.
That log is ground truth for the :class:`~repro.health.invariants.\
HealthScorecard` — used to *judge* the detector after the fact, never
to drive remediation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

# Fault kinds recorded in the ground-truth log.
SWITCH_SILENT = "switch-silent"
SMUX_SILENT = "smux-silent"
GRAY = "gray"


def switch_key(index: int) -> str:
    return f"switch:{index}"


def smux_key(smux_id: int) -> str:
    return f"smux:{smux_id}"


def dip_key(dip: int) -> str:
    return f"dip:{dip:#x}"


def gray_key(switch_index: int, vip: Optional[int]) -> str:
    scope = "*" if vip is None else f"{vip:#x}"
    return f"gray:{switch_index}:{scope}"


@dataclass
class FaultRecord:
    """Ground truth for one injected fault's lifecycle."""

    kind: str
    target: str
    injected_t: float
    cleared_t: Optional[float] = None
    detected_t: Optional[float] = None
    remediated_t: Optional[float] = None
    detail: str = ""

    @property
    def active(self) -> bool:
        return self.cleared_t is None

    @property
    def detected(self) -> bool:
        return self.detected_t is not None

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "target": self.target,
            "injected_t": self.injected_t,
            "cleared_t": self.cleared_t,
            "detected_t": self.detected_t,
            "remediated_t": self.remediated_t,
            "detail": self.detail,
        }


class FaultPlane:
    """Holds the set of currently-active silent faults.

    ``seed`` feeds the Bernoulli draws for gray (partial) loss; the
    stream is independent of every other RNG in the system so chaos
    replays stay bit-identical.
    """

    def __init__(self, seed: int = 0, background_loss: float = 0.0) -> None:
        self.rng = random.Random(seed ^ 0x6A11)
        self.background_loss = background_loss
        self.dead_switches: Set[int] = set()
        self.dead_smuxes: Set[int] = set()
        # (switch_index, vip-or-None) -> loss rate in (0, 1].  A None vip
        # means the gray failure affects every VIP on the switch.
        self.gray: Dict[Tuple[int, Optional[int]], float] = {}
        self.log: List[FaultRecord] = []
        self._open: Dict[str, FaultRecord] = {}

    # -- injection ----------------------------------------------------------

    def _record(self, kind: str, target: str, t: float, detail: str = "") -> None:
        rec = FaultRecord(kind=kind, target=target, injected_t=t, detail=detail)
        self.log.append(rec)
        self._open[target] = rec

    def _clear(self, target: str, t: float) -> None:
        rec = self._open.pop(target, None)
        if rec is not None:
            rec.cleared_t = t

    def silent_fail_switch(self, index: int, t: float) -> None:
        if index in self.dead_switches:
            raise ValueError(f"switch {index} already silently dead")
        self.dead_switches.add(index)
        self._record(SWITCH_SILENT, switch_key(index), t)

    def silent_recover_switch(self, index: int, t: float) -> None:
        self.dead_switches.discard(index)
        self._clear(switch_key(index), t)

    def silent_fail_smux(self, smux_id: int, t: float) -> None:
        if smux_id in self.dead_smuxes:
            raise ValueError(f"smux {smux_id} already silently dead")
        self.dead_smuxes.add(smux_id)
        self._record(SMUX_SILENT, smux_key(smux_id), t)

    def silent_recover_smux(self, smux_id: int, t: float) -> None:
        self.dead_smuxes.discard(smux_id)
        self._clear(smux_key(smux_id), t)

    def inject_gray(
        self,
        switch_index: int,
        vip: Optional[int],
        loss_rate: float,
        t: float,
    ) -> None:
        if not 0.0 < loss_rate <= 1.0:
            raise ValueError(f"loss_rate must be in (0, 1], got {loss_rate}")
        key = (switch_index, vip)
        if key in self.gray:
            raise ValueError(f"gray failure already active on {key}")
        self.gray[key] = loss_rate
        self._record(
            GRAY,
            gray_key(switch_index, vip),
            t,
            detail=f"loss={loss_rate}",
        )

    def clear_gray(self, switch_index: int, vip: Optional[int], t: float) -> None:
        self.gray.pop((switch_index, vip), None)
        self._clear(gray_key(switch_index, vip), t)

    def retire_smux(self, smux_id: int, t: float) -> None:
        """The remediation loop removed this SMux from the fleet; its
        fault (if any) can no longer recur."""
        self.dead_smuxes.discard(smux_id)
        self._clear(smux_key(smux_id), t)

    # -- the dataplane-truth question ---------------------------------------

    def hmux_drops(self, switch_index: int, vip: int) -> bool:
        """Would the physical network drop a packet for ``vip`` entering
        the HMux on ``switch_index``?"""
        if switch_index in self.dead_switches:
            return True
        loss = self.gray.get((switch_index, vip))
        if loss is None:
            loss = self.gray.get((switch_index, None))
        if loss is not None and self.rng.random() < loss:
            return True
        return self._background()

    def smux_drops(self, smux_id: int) -> bool:
        if smux_id in self.dead_smuxes:
            return True
        return self._background()

    def switch_heartbeat_drops(self, switch_index: int) -> bool:
        """Liveness heartbeats reach the switch CPU, not the VIP path:
        a silently dead switch misses them, but a gray switch — broken
        only for some forwarding — still answers."""
        if switch_index in self.dead_switches:
            return True
        return self._background()

    def smux_heartbeat_drops(self, smux_id: int) -> bool:
        if smux_id in self.dead_smuxes:
            return True
        return self._background()

    def _background(self) -> bool:
        return self.background_loss > 0.0 and self.rng.random() < self.background_loss

    # -- introspection (for the scorecard only) -----------------------------

    def active_faults(self) -> List[FaultRecord]:
        return [rec for rec in self.log if rec.active]

    def record_for(self, target: str) -> Optional[FaultRecord]:
        return self._open.get(target)

    def mark_detected(self, target: str, t: float) -> None:
        rec = self._open.get(target)
        if rec is not None and rec.detected_t is None:
            rec.detected_t = t

    def mark_remediated(self, target: str, t: float) -> None:
        rec = self._open.get(target)
        if rec is not None and rec.remediated_t is None:
            rec.remediated_t = t

    def to_dict(self) -> Dict[str, object]:
        return {"faults": [rec.to_dict() for rec in self.log]}
