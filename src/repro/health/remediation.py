"""Verdict -> controller-op translation, and the monitor main loop.

The :class:`RemediationLoop` is the only component here allowed to
touch the controller's mutating API, and it only uses the existing
journaled lifecycle ops — so every detector-initiated failover is
written to the WAL before its effects and survives crash-restart
exactly like an operator-initiated one (``repro recover`` replays it).

Verdict mapping:

==================  =====================================================
Verdict             Controller op
==================  =====================================================
QUARANTINE_SWITCH   ``fail_switch`` — withdraw /32s; SMux aggregate
                    routes take over (the paper's failover, S5.3)
PROBATION_SWITCH    ``recover_switch`` — rejoin BGP, no VIPs yet
RESTORE_SWITCH      ``rebalance`` — re-home VIPs onto the recovered
                    switch once probation completed cleanly
REQUARANTINE_SWITCH ``fail_switch`` again (probation relapse)
QUARANTINE_SMUX     ``add_smux`` replacement, then ``fail_smux``
QUARANTINE_DIP      ``dip_failure`` — reap the DIP (never the last one)
GRAY_VIP            ``migrate_vip`` to the least-loaded healthy switch
==================  =====================================================

A :class:`SimulatedCrash` raised inside any of these ops propagates —
the monitor never swallows it, so crash chaos exercises recovery of
detector-initiated ops too.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.controller import ControllerError, DuetController
from repro.health.detector import (
    HealthConfig,
    HealthDetector,
    HealthState,
    Verdict,
    VerdictKind,
)
from repro.health.faults import FaultPlane, smux_key, switch_key
from repro.health.probes import ProbeNetwork, ProbeScheduler, SimClock

_HMUX_VIP_COUNTER = "duet_hmux_vip_packets_total"


class RemediationLoop:
    """Applies verdicts through journaled controller ops."""

    def __init__(
        self,
        controller: DuetController,
        detector: HealthDetector,
        replace_failed_smux: bool = True,
    ) -> None:
        self.controller = controller
        self.detector = detector
        self.replace_failed_smux = replace_failed_smux
        self.actions: List[Dict[str, object]] = []
        self.removed_smuxes: List[int] = []
        self.errors = 0

    def rebind(self, controller: DuetController) -> None:
        """Point at a restored controller after crash recovery."""
        self.controller = controller

    def _run(self, op: str, target: str, t: float, fn, **params) -> bool:
        entry: Dict[str, object] = {
            "t": t, "op": op, "target": target, "params": params, "ok": True,
        }
        try:
            fn()
        except ControllerError as exc:
            entry["ok"] = False
            entry["error"] = str(exc)
            self.errors += 1
            self.actions.append(entry)
            return False
        self.actions.append(entry)
        return True

    def apply(self, verdict: Verdict, t: float) -> None:
        kind = verdict.kind
        ctl = self.controller

        if kind in (
            VerdictKind.QUARANTINE_SWITCH, VerdictKind.REQUARANTINE_SWITCH
        ):
            if verdict.ident not in ctl.failed_switches:
                self._run(
                    "fail_switch", verdict.target, t,
                    lambda: ctl.fail_switch(verdict.ident),
                    switch=verdict.ident, reason=verdict.detail,
                )

        elif kind is VerdictKind.PROBATION_SWITCH:
            if verdict.ident in ctl.failed_switches:
                self._run(
                    "recover_switch", verdict.target, t,
                    lambda: ctl.recover_switch(verdict.ident),
                    switch=verdict.ident,
                )

        elif kind is VerdictKind.RESTORE_SWITCH:
            # recover_switch may have failed at probation time (e.g. the
            # switch was still link-isolated); retry before re-homing.
            if verdict.ident in ctl.failed_switches:
                if not self._run(
                    "recover_switch", verdict.target, t,
                    lambda: ctl.recover_switch(verdict.ident),
                    switch=verdict.ident,
                ):
                    return
            self._run(
                "rebalance", verdict.target, t, lambda: ctl.rebalance(),
                reason="probation complete",
            )

        elif kind is VerdictKind.QUARANTINE_SMUX:
            if self.replace_failed_smux or len(ctl.smuxes) == 1:
                self._run(
                    "add_smux", verdict.target, t, lambda: ctl.add_smux(),
                    reason="replace quarantined smux",
                )
            if self._run(
                "fail_smux", verdict.target, t,
                lambda: ctl.fail_smux(verdict.ident),
                smux=verdict.ident,
            ):
                self.removed_smuxes.append(verdict.ident)
                self.detector.retire(verdict.target, t)

        elif kind is VerdictKind.QUARANTINE_DIP:
            vip = verdict.vip
            record = None if vip is None else ctl.records().get(vip)
            if record is None:
                return
            if len(record.dips) <= 1:
                self.actions.append({
                    "t": t, "op": "dip_failure", "target": verdict.target,
                    "ok": False, "error": "refusing to reap the last DIP",
                })
                return
            if self._run(
                "dip_failure", verdict.target, t,
                lambda: ctl.dip_failure(vip, verdict.ident),
                vip=vip, dip=verdict.ident,
            ):
                self.detector.retire(verdict.target, t)

        elif kind is VerdictKind.GRAY_VIP:
            vip = verdict.vip
            target_switch = self._migration_target(exclude=verdict.ident)
            if target_switch is None:
                self.actions.append({
                    "t": t, "op": "migrate_vip", "target": verdict.target,
                    "ok": False, "error": "no healthy migration target",
                })
                return
            self._run(
                "migrate_vip", verdict.target, t,
                lambda: ctl.migrate_vip(vip, target_switch),
                vip=vip, to_switch=target_switch, reason=verdict.detail,
            )

    def _migration_target(self, exclude: int) -> Optional[int]:
        """Least-loaded live switch the detector considers healthy."""
        ctl = self.controller
        load: Dict[int, int] = {}
        for index in ctl.switch_agents:
            if index == exclude or index in ctl.failed_switches:
                continue
            track = self.detector.track(switch_key(index))
            if track is not None and track.state is not HealthState.HEALTHY:
                continue
            load[index] = 0
        if not load:
            return None
        for record in ctl.records().values():
            if record.assigned_switch in load:
                load[record.assigned_switch] += 1
        return min(load, key=lambda idx: (load[idx], idx))


class HealthMonitor:
    """probe -> detect -> remediate, one simulated period at a time."""

    def __init__(
        self,
        controller: DuetController,
        fault_plane: FaultPlane,
        config: Optional[HealthConfig] = None,
        registry=None,
        seed: int = 0,
    ) -> None:
        self.config = config or HealthConfig()
        self.controller = controller
        self.registry = registry
        self.clock = SimClock()
        self.network = ProbeNetwork(controller, fault_plane, seed=seed)
        self.scheduler = ProbeScheduler(
            self.network, self.config.vip_probes_per_round
        )
        self.detector = HealthDetector(self.config, registry)
        self.remediation = RemediationLoop(controller, self.detector)
        self.timeline: List[Dict[str, object]] = []
        self._transitions_seen = 0
        self._instruments = None
        if registry is not None:
            self._instruments = {
                "probes": registry.counter(
                    "duet_health_probes_total",
                    "Health probes sent, by probe family and result.",
                    ("kind", "result"),
                ),
                # VIP-probe outcomes at SLI granularity: "ok" delivered,
                # "post-mux-drop" lost after a healthy mux decap (the
                # DIP's problem, not the load balancer's), "mux-drop"
                # eaten at/before the mux, "unrouted" no route at all.
                # Incremented here directly (no collector) so partial
                # recorder ticks see fresh values every probe round.
                "vip_outcomes": registry.counter(
                    "duet_health_vip_probe_outcomes_total",
                    "VIP data-path probe outcomes (availability SLI).",
                    ("result",),
                ),
                "vip_rtt": registry.histogram(
                    "duet_health_vip_rtt_seconds",
                    "Delivered VIP probe round-trip time (latency SLI).",
                    buckets=(
                        0.0002, 0.0003, 0.0005, 0.00075, 0.001, 0.0025,
                    ),
                ),
                "rounds": registry.counter(
                    "duet_health_probe_rounds_total",
                    "Completed probe rounds.",
                ),
                "transitions": registry.counter(
                    "duet_health_transitions_total",
                    "Quarantine state-machine transitions.",
                    ("from_state", "to_state"),
                ),
                "verdicts": registry.counter(
                    "duet_health_verdicts_total",
                    "Detector verdicts, by kind.",
                    ("kind",),
                ),
                "remediations": registry.counter(
                    "duet_health_remediations_total",
                    "Remediation ops applied, by op and outcome.",
                    ("op", "result"),
                ),
                "states": registry.gauge(
                    "duet_health_targets",
                    "Probe targets currently in each health state.",
                    ("state",),
                ),
            }
            registry.register_collector("health", self._collect)

    def _collect(self, registry) -> None:
        gauge = self._instruments["states"]
        for state, count in self.detector.state_counts().items():
            gauge.labels(state).set(count)

    def rebind(self, controller: DuetController) -> None:
        """Repoint at a restored controller after crash recovery; the
        detector's suspicion state and probe series survive the crash
        (the monitor is a separate failure domain from the controller)."""
        self.controller = controller
        self.network.controller = controller
        self.remediation.rebind(controller)

    # -- per-round plumbing -------------------------------------------------

    def _hmux_counter_snapshot(self) -> Dict[Tuple[str, ...], float]:
        if self.registry is None:
            return {}
        self.registry.collect()
        counter = self.registry.get(_HMUX_VIP_COUNTER)
        if counter is None:
            return {}
        return {
            tuple(value for _, value in sample.labels): sample.value
            for sample in counter.samples()
        }

    def _adopt_external(self, t: float) -> None:
        for index in self.controller.failed_switches:
            key = switch_key(index)
            track = self.detector.track(key)
            if track is None or track.state in (
                HealthState.HEALTHY, HealthState.SUSPECT
            ):
                self.detector.adopt_quarantine(key, "switch", index, t)

    def run_round(self) -> List[Verdict]:
        t = self.clock.advance(self.config.probe_period_s)
        self._adopt_external(t)

        before = self._hmux_counter_snapshot()
        round_ = self.scheduler.run_round(t)
        after = self._hmux_counter_snapshot()
        deltas = {
            key: after[key] - before.get(key, 0.0)
            for key in after
            if after[key] != before.get(key, 0.0)
        }

        if self._instruments is not None:
            probes = self._instruments["probes"]
            vip_outcomes = self._instruments["vip_outcomes"]
            vip_rtt = self._instruments["vip_rtt"]
            for outcome in round_.outcomes:
                probes.labels(outcome.kind, "ok" if outcome.ok else "drop").inc()
                if outcome.kind != "vip":
                    continue
                if outcome.ok:
                    result = "ok"
                elif outcome.post_mux:
                    result = "post-mux-drop"
                elif outcome.mux_kind is None:
                    result = "unrouted"
                else:
                    result = "mux-drop"
                vip_outcomes.labels(result).inc()
                if outcome.latency_s is not None:
                    vip_rtt.observe(outcome.latency_s)
            self._instruments["rounds"].inc()

        verdicts = self.detector.observe(round_, deltas)

        new_transitions = self.detector.transitions[self._transitions_seen:]
        self._transitions_seen = len(self.detector.transitions)
        for tr in new_transitions:
            self.timeline.append({"type": "transition", **tr})
            if self._instruments is not None:
                self._instruments["transitions"].labels(
                    tr["from"], tr["to"]
                ).inc()

        for verdict in verdicts:
            self.timeline.append({
                "type": "verdict", "t": verdict.t, "kind": verdict.kind.value,
                "target": verdict.target, "detail": verdict.detail,
            })
            if self._instruments is not None:
                self._instruments["verdicts"].labels(verdict.kind.value).inc()
            actions_before = len(self.remediation.actions)
            self.remediation.apply(verdict, t)
            for action in self.remediation.actions[actions_before:]:
                self.timeline.append({"type": "remediation", **action})
                if self._instruments is not None:
                    self._instruments["remediations"].labels(
                        action["op"], "ok" if action["ok"] else "error"
                    ).inc()

        # Late-arriving transitions from remediation (track retirement,
        # gray escalation) land in the timeline too.
        late = self.detector.transitions[self._transitions_seen:]
        self._transitions_seen = len(self.detector.transitions)
        for tr in late:
            self.timeline.append({"type": "transition", **tr})
            if self._instruments is not None:
                self._instruments["transitions"].labels(
                    tr["from"], tr["to"]
                ).inc()

        return verdicts

    def run(self, rounds: int) -> List[Verdict]:
        all_verdicts: List[Verdict] = []
        for _ in range(rounds):
            all_verdicts.extend(self.run_round())
        return all_verdicts
