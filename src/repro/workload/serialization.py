"""Persist workloads: populations and traces to/from JSON.

The paper's evaluation is driven by a recorded production trace; the
reproduction synthesizes one, but downstream users need the same
affordance — freeze a workload to disk, share it, and replay it bit-for-
bit later (or substitute a real trace in the same schema).

Schema (version 1)::

    population.json
      {"version": 1, "kind": "population",
       "topology": {...FatTreeParams...},
       "vips": [{"vip_id", "addr", "traffic_bps", "internet_fraction",
                 "latency_sensitive", "ingress_racks": [[tor, frac]...],
                 "port_pools": [[port, [dip_addr...]]...],
                 "dips": [{"addr", "server_id", "weight"}...]}, ...]}

    trace.json
      {"version": 1, "kind": "trace",
       "epochs": [{"index", "start_s",
                   "added": [...], "removed": [...],
                   "demands": [{"vip_id", "traffic_bps"}, ...]}, ...]}

Trace files store only what varies per epoch (per-VIP traffic and
membership); static demand structure is joined back from the population
at load time.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.net.topology import FatTreeParams, SwitchTableSpec, Topology
from repro.workload.trace import TraceEpoch
from repro.workload.vips import Dip, Vip, VipPopulation

PathLike = Union[str, pathlib.Path]

SCHEMA_VERSION = 1


class SerializationError(Exception):
    """Malformed or incompatible workload file."""


# -- topology ----------------------------------------------------------------

def params_to_dict(params: FatTreeParams) -> Dict:
    return {
        "n_containers": params.n_containers,
        "tors_per_container": params.tors_per_container,
        "aggs_per_container": params.aggs_per_container,
        "n_cores": params.n_cores,
        "servers_per_tor": params.servers_per_tor,
        "tor_agg_gbps": params.tor_agg_gbps,
        "agg_core_gbps": params.agg_core_gbps,
        "tables": {
            "host_table": params.tables.host_table,
            "ecmp_table": params.tables.ecmp_table,
            "tunnel_table": params.tables.tunnel_table,
        },
    }


def params_from_dict(payload: Dict) -> FatTreeParams:
    try:
        tables = payload.get("tables", {})
        return FatTreeParams(
            n_containers=payload["n_containers"],
            tors_per_container=payload["tors_per_container"],
            aggs_per_container=payload["aggs_per_container"],
            n_cores=payload["n_cores"],
            servers_per_tor=payload["servers_per_tor"],
            tor_agg_gbps=payload.get("tor_agg_gbps", 10.0),
            agg_core_gbps=payload.get("agg_core_gbps", 40.0),
            tables=SwitchTableSpec(
                host_table=tables.get("host_table", 16 * 1024),
                ecmp_table=tables.get("ecmp_table", 4 * 1024),
                tunnel_table=tables.get("tunnel_table", 512),
            ),
        )
    except KeyError as missing:
        raise SerializationError(f"topology field missing: {missing}")


# -- population ----------------------------------------------------------------

def save_population(
    population: VipPopulation, path: PathLike
) -> pathlib.Path:
    """Write a population (with its topology parameters) to JSON."""
    payload = {
        "version": SCHEMA_VERSION,
        "kind": "population",
        "topology": params_to_dict(population.topology.params),
        "vips": [
            {
                "vip_id": vip.vip_id,
                "addr": vip.addr,
                "traffic_bps": vip.traffic_bps,
                "internet_fraction": vip.internet_fraction,
                "latency_sensitive": vip.latency_sensitive,
                "ingress_racks": [
                    [tor, fraction] for tor, fraction in vip.ingress_racks
                ],
                "port_pools": [
                    [port, list(pool)] for port, pool in vip.port_pools
                ],
                "dips": [
                    {
                        "addr": dip.addr,
                        "server_id": dip.server_id,
                        "weight": dip.weight,
                    }
                    for dip in vip.dips
                ],
            }
            for vip in population
        ],
    }
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(payload, indent=1) + "\n")
    return target


def load_population(path: PathLike) -> VipPopulation:
    """Load a population; rebuilds the topology from the stored params."""
    payload = _read(path, expected_kind="population")
    params = params_from_dict(payload["topology"])
    topology = Topology(params)
    vips: List[Vip] = []
    for entry in payload["vips"]:
        try:
            dips = tuple(
                Dip(
                    addr=d["addr"],
                    server_id=d["server_id"],
                    tor=topology.server_tor(d["server_id"]),
                    weight=d.get("weight", 1.0),
                )
                for d in entry["dips"]
            )
            vips.append(Vip(
                vip_id=entry["vip_id"],
                addr=entry["addr"],
                dips=dips,
                traffic_bps=entry["traffic_bps"],
                ingress_racks=tuple(
                    (tor, fraction)
                    for tor, fraction in entry["ingress_racks"]
                ),
                internet_fraction=entry["internet_fraction"],
                port_pools=tuple(
                    (port, tuple(pool))
                    for port, pool in entry.get("port_pools", [])
                ),
                latency_sensitive=entry.get("latency_sensitive", False),
            ))
        except KeyError as missing:
            raise SerializationError(f"VIP field missing: {missing}")
    return VipPopulation(topology, vips)


# -- traces ----------------------------------------------------------------------

def save_trace(
    epochs: Sequence[TraceEpoch], path: PathLike
) -> pathlib.Path:
    """Write a materialized trace (per-epoch traffic + membership)."""
    payload = {
        "version": SCHEMA_VERSION,
        "kind": "trace",
        "epochs": [
            {
                "index": epoch.index,
                "start_s": epoch.start_s,
                "added": list(epoch.added_vip_ids),
                "removed": list(epoch.removed_vip_ids),
                "demands": [
                    {"vip_id": d.vip_id, "traffic_bps": d.traffic_bps}
                    for d in epoch.demands
                ],
            }
            for epoch in epochs
        ],
    }
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(payload, indent=1) + "\n")
    return target


def load_trace(
    path: PathLike, population: VipPopulation
) -> List[TraceEpoch]:
    """Load a trace, joining static demand structure back from
    ``population`` (the file stores only what varies per epoch)."""
    payload = _read(path, expected_kind="trace")
    base = {v.vip_id: v.demand() for v in population}
    epochs: List[TraceEpoch] = []
    for entry in payload["epochs"]:
        demands = []
        for d in entry["demands"]:
            template = base.get(d["vip_id"])
            if template is None:
                raise SerializationError(
                    f"trace references unknown VIP {d['vip_id']}"
                )
            if template.traffic_bps > 0:
                demands.append(
                    template.scaled(d["traffic_bps"] / template.traffic_bps)
                )
            else:
                demands.append(template)
        epochs.append(TraceEpoch(
            index=entry["index"],
            start_s=entry["start_s"],
            demands=tuple(demands),
            added_vip_ids=tuple(entry.get("added", [])),
            removed_vip_ids=tuple(entry.get("removed", [])),
        ))
    return epochs


def _read(path: PathLike, expected_kind: str) -> Dict:
    target = pathlib.Path(path)
    try:
        payload = json.loads(target.read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise SerializationError(f"cannot read {target}: {error}")
    if payload.get("version") != SCHEMA_VERSION:
        raise SerializationError(
            f"unsupported schema version {payload.get('version')!r}"
        )
    if payload.get("kind") != expected_kind:
        raise SerializationError(
            f"expected a {expected_kind} file, got {payload.get('kind')!r}"
        )
    return payload
