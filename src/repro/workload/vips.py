"""VIP/DIP population generation over a topology.

Builds the service inventory the Duet controller manages: each VIP with
its DIPs placed on servers (racks), its traffic volume drawn from the
Figure 15 skew, and its ingress split (intra-DC client racks vs Internet
through the core layer).  The :class:`VipDemand` view is what the
assignment algorithm consumes: it only needs volumes, ingress points and
DIP rack locations — never the packet-level details.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.net.addressing import AddressAllocator, Prefix
from repro.net.topology import Topology
from repro.workload.distributions import (
    DipCountModel,
    IngressModel,
    TrafficSkew,
)

#: The address plan: disjoint pools so address classes never collide.
VIP_POOL = Prefix.parse("10.0.0.0/12")
DIP_POOL = Prefix.parse("100.0.0.0/10")
HOST_POOL = Prefix.parse("20.0.0.0/12")
SMUX_POOL = Prefix.parse("30.0.0.0/16")
SWITCH_POOL = Prefix.parse("172.16.0.0/12")
CLIENT_POOL = Prefix.parse("8.0.0.0/12")

#: Aggregate prefixes the SMuxes announce to backstop every VIP (S3.3.1):
#: short enough that any /32 HMux announcement wins by LPM.
SMUX_AGGREGATES = (VIP_POOL,)


def switch_loopback(switch_index: int) -> int:
    """Deterministic loopback address of a switch (encap source IP)."""
    return SWITCH_POOL.network + switch_index


def host_address(server_id: int) -> int:
    """Deterministic native address of a physical server."""
    return HOST_POOL.network + server_id


@dataclass(frozen=True)
class Dip:
    """One service instance: a direct IP on a server in a rack.

    ``weight`` expresses heterogeneous processing power (paper S5.2:
    "When the DIPs for a given VIP have different processing power, we
    can proportionally split the traffic using WCMP").
    """

    addr: int
    server_id: int
    tor: int
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError("DIP weight must be positive")


@dataclass(frozen=True)
class Vip:
    """One load-balanced service endpoint.

    ``port_pools`` optionally splits the DIP set by destination L4 port
    (paper S5.2, Figure 8: "A VIP can have one set of DIPs for the HTTP
    port and another for the FTP port"): each entry maps a port to the
    subset of DIP addresses serving it.  Ports not listed fall through
    to the whole DIP set.
    """

    vip_id: int
    addr: int
    dips: Tuple[Dip, ...]
    traffic_bps: float
    ingress_racks: Tuple[Tuple[int, float], ...]  # (ToR index, fraction)
    internet_fraction: float
    port_pools: Tuple[Tuple[int, Tuple[int, ...]], ...] = ()
    latency_sensitive: bool = False

    def __post_init__(self) -> None:
        dip_addrs = {d.addr for d in self.dips}
        for port, pool in self.port_pools:
            if not 0 <= port <= 0xFFFF:
                raise ValueError(f"invalid service port {port}")
            if not pool:
                raise ValueError(f"empty DIP pool for port {port}")
            unknown = set(pool) - dip_addrs
            if unknown:
                raise ValueError(
                    f"port {port} pool references non-DIP addresses"
                )

    @property
    def n_dips(self) -> int:
        return len(self.dips)

    def dip_weights(self) -> Optional[Tuple[float, ...]]:
        """Per-DIP WCMP weights, or None when the pool is homogeneous."""
        weights = tuple(d.weight for d in self.dips)
        if all(w == weights[0] for w in weights):
            return None
        return weights

    def dip_tors(self) -> Tuple[Tuple[int, int], ...]:
        """(ToR, number of DIPs there), the granularity assignment needs."""
        counts: Dict[int, int] = {}
        for dip in self.dips:
            counts[dip.tor] = counts.get(dip.tor, 0) + 1
        return tuple(sorted(counts.items()))

    def demand(self) -> "VipDemand":
        return VipDemand(
            vip_id=self.vip_id,
            addr=self.addr,
            traffic_bps=self.traffic_bps,
            n_dips=self.n_dips,
            ingress_racks=self.ingress_racks,
            internet_fraction=self.internet_fraction,
            dip_tors=self.dip_tors(),
            latency_sensitive=self.latency_sensitive,
        )


@dataclass(frozen=True)
class VipDemand:
    """The assignment algorithm's view of one VIP (paper Table 1 inputs)."""

    vip_id: int
    addr: int
    traffic_bps: float
    n_dips: int
    ingress_racks: Tuple[Tuple[int, float], ...]
    internet_fraction: float
    dip_tors: Tuple[Tuple[int, int], ...]
    latency_sensitive: bool = False

    @property
    def diffuse_intra_fraction(self) -> float:
        """Intra-DC traffic not pinned to explicit client racks: sourced
        uniformly from every rack (big services are consumed DC-wide).
        Zero when the VIP has explicit ingress racks."""
        residual = 1.0 - self.internet_fraction - sum(
            fraction for _, fraction in self.ingress_racks
        )
        return max(0.0, residual)

    def scaled(self, factor: float) -> "VipDemand":
        """The same demand with traffic multiplied by ``factor`` (used by
        the trace generator to apply epoch-to-epoch traffic dynamics)."""
        if factor < 0:
            raise ValueError("traffic scale factor must be non-negative")
        return VipDemand(
            vip_id=self.vip_id,
            addr=self.addr,
            traffic_bps=self.traffic_bps * factor,
            n_dips=self.n_dips,
            ingress_racks=self.ingress_racks,
            internet_fraction=self.internet_fraction,
            dip_tors=self.dip_tors,
            latency_sensitive=self.latency_sensitive,
        )


class VipPopulation:
    """The full set of VIPs over a topology."""

    def __init__(self, topology: Topology, vips: Sequence[Vip]) -> None:
        self.topology = topology
        self.vips: List[Vip] = list(vips)
        self._by_addr = {v.addr: v for v in self.vips}
        if len(self._by_addr) != len(self.vips):
            raise ValueError("duplicate VIP addresses in population")

    def __len__(self) -> int:
        return len(self.vips)

    def __iter__(self) -> Iterator[Vip]:
        return iter(self.vips)

    def by_addr(self, addr: int) -> Vip:
        return self._by_addr[addr]

    def has_addr(self, addr: int) -> bool:
        return addr in self._by_addr

    def add(self, vip: Vip) -> None:
        """Add a VIP to the population (controller VIP lifecycle, S5.2)."""
        if vip.addr in self._by_addr:
            raise ValueError(f"duplicate VIP address {vip.addr}")
        self.vips.append(vip)
        self._by_addr[vip.addr] = vip

    def remove(self, addr: int) -> Vip:
        """Remove and return the VIP at ``addr``."""
        vip = self._by_addr.pop(addr, None)
        if vip is None:
            raise KeyError(f"no VIP at address {addr}")
        self.vips.remove(vip)
        return vip

    @property
    def total_traffic_bps(self) -> float:
        return sum(v.traffic_bps for v in self.vips)

    def by_traffic_desc(self) -> List[Vip]:
        """VIPs sorted by traffic, heaviest first (assignment order, S4.1)."""
        return sorted(self.vips, key=lambda v: (-v.traffic_bps, v.vip_id))

    def demands(self) -> List[VipDemand]:
        return [v.demand() for v in self.vips]

    def total_dips(self) -> int:
        return sum(v.n_dips for v in self.vips)


def generate_population(
    topology: Topology,
    n_vips: int,
    total_traffic_bps: float,
    *,
    skew: TrafficSkew = TrafficSkew(),
    dip_model: DipCountModel = DipCountModel(),
    ingress: IngressModel = IngressModel(),
    heterogeneous_fraction: float = 0.0,
    latency_sensitive_fraction: float = 0.0,
    seed: int = 0,
) -> VipPopulation:
    """Generate a population with Figure 15 characteristics.

    Deterministic in ``seed``.  DIPs are placed on servers sampled
    uniformly over racks (a server may host several DIPs — virtualized
    clusters); client racks are sampled per VIP with random weights.
    ``heterogeneous_fraction`` of the VIPs get mixed-generation server
    pools: half of their DIPs carry WCMP weight 2.0 (S5.2);
    ``latency_sensitive_fraction`` marks VIPs as latency-critical (stock
    trading / memory caches, S1), used by the "latency-first" assignment
    order of S9.
    """
    if not 0.0 <= heterogeneous_fraction <= 1.0:
        raise ValueError("heterogeneous_fraction must be in [0, 1]")
    if not 0.0 <= latency_sensitive_fraction <= 1.0:
        raise ValueError("latency_sensitive_fraction must be in [0, 1]")
    if n_vips < 1:
        raise ValueError("need at least one VIP")
    if total_traffic_bps <= 0:
        raise ValueError("total traffic must be positive")
    rng = random.Random(seed)
    # Separate stream so optional features never perturb the base
    # population sampling (placements stay identical across versions).
    sensitive_rng = random.Random(seed ^ 0x5E45)
    vip_alloc = AddressAllocator(VIP_POOL)
    dip_alloc = AddressAllocator(DIP_POOL)
    shares = skew.shares(n_vips, total_traffic_bps)
    dip_counts = dip_model.counts(n_vips, rng)
    tors = topology.tors()

    vips: List[Vip] = []
    for vip_id in range(n_vips):
        traffic = float(shares[vip_id]) * total_traffic_bps
        heterogeneous = rng.random() < heterogeneous_fraction
        n_dips = max(
            dip_counts[vip_id], dip_model.floor_for_traffic(traffic)
        )
        dips = _place_dips(
            topology, n_dips, dip_alloc, rng,
            heterogeneous=heterogeneous,
        )
        if ingress.is_diffuse(traffic):
            # DC-wide clients: no explicit racks; the intra fraction is
            # sourced uniformly from every rack (see VipDemand).
            ingress_racks = ()
        else:
            ingress_racks = _sample_ingress_racks(
                tors,
                ingress.racks_for(traffic, len(tors)),
                ingress.intra_dc_fraction,
                rng,
            )
        vips.append(Vip(
            vip_id=vip_id,
            addr=vip_alloc.allocate(),
            dips=tuple(dips),
            traffic_bps=traffic,
            ingress_racks=ingress_racks,
            internet_fraction=1.0 - ingress.intra_dc_fraction,
            latency_sensitive=(
                sensitive_rng.random() < latency_sensitive_fraction
            ),
        ))
    return VipPopulation(topology, vips)


def _place_dips(
    topology: Topology,
    count: int,
    dip_alloc: AddressAllocator,
    rng: random.Random,
    *,
    heterogeneous: bool = False,
) -> List[Dip]:
    """Place ``count`` DIPs on random servers (rack-uniform sampling)."""
    dips: List[Dip] = []
    n_servers = topology.params.n_servers
    for index in range(count):
        server = rng.randrange(n_servers)
        weight = 2.0 if heterogeneous and index % 2 == 0 else 1.0
        dips.append(Dip(
            addr=dip_alloc.allocate(),
            server_id=server,
            tor=topology.server_tor(server),
            weight=weight,
        ))
    return dips


def _sample_ingress_racks(
    tors: Sequence[int],
    n_racks: int,
    intra_fraction: float,
    rng: random.Random,
) -> Tuple[Tuple[int, float], ...]:
    """Sample client racks and split the intra-DC fraction among them."""
    if intra_fraction <= 0:
        return ()
    racks = rng.sample(list(tors), n_racks)
    weights = [rng.random() + 0.1 for _ in racks]
    total = sum(weights)
    return tuple(
        (rack, intra_fraction * weight / total)
        for rack, weight in sorted(zip(racks, weights))
    )
