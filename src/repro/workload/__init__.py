"""Workload synthesis: VIP populations, traces, packet streams."""

from repro.workload.distributions import (
    DipCountModel,
    IngressModel,
    TrafficSkew,
    empirical_cdf,
    share_concentration,
)
from repro.workload.flowgen import PingProbe, PoissonPacketStream, TimedPacket
from repro.workload.serialization import (
    SerializationError,
    load_population,
    load_trace,
    save_population,
    save_trace,
)
from repro.workload.trace import TraceConfig, TraceEpoch, TraceGenerator
from repro.workload.vips import (
    CLIENT_POOL,
    DIP_POOL,
    HOST_POOL,
    SMUX_AGGREGATES,
    SMUX_POOL,
    SWITCH_POOL,
    VIP_POOL,
    Dip,
    Vip,
    VipDemand,
    VipPopulation,
    generate_population,
    host_address,
    switch_loopback,
)

__all__ = [
    "CLIENT_POOL",
    "DIP_POOL",
    "Dip",
    "DipCountModel",
    "HOST_POOL",
    "IngressModel",
    "PingProbe",
    "PoissonPacketStream",
    "SMUX_AGGREGATES",
    "SerializationError",
    "SMUX_POOL",
    "SWITCH_POOL",
    "TimedPacket",
    "TraceConfig",
    "TraceEpoch",
    "TraceGenerator",
    "TrafficSkew",
    "VIP_POOL",
    "Vip",
    "VipDemand",
    "VipPopulation",
    "empirical_cdf",
    "generate_population",
    "host_address",
    "load_population",
    "load_trace",
    "save_population",
    "save_trace",
    "share_concentration",
    "switch_loopback",
]
