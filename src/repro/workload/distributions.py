"""Skewed VIP traffic and DIP-count distributions (paper Figure 15).

The paper's evaluation is driven by a production trace of 30K VIPs whose
traffic is "highly skewed - most of the traffic is destined for a small
number of 'elephant' VIPs" (S3.3.2, Figure 15).  That skew is the load-
bearing property of the whole design: elephants fit in the 16K host-table
entries of the HMuxes while the long tail of mice overflows harmlessly to
the SMuxes.

We model the per-VIP traffic share with a bounded Zipf-Mandelbrot law and
the per-VIP DIP count with a traffic-correlated log-normal, both
parameterized so the synthetic CDFs match the shape of Figure 15:
roughly, the top ~10% of VIPs carry >90% of the bytes, and DIP counts
span 1 to a few hundred with a heavy tail.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np


@dataclass(frozen=True)
class TrafficSkew:
    """Zipf-Mandelbrot parameters for the per-VIP traffic shares.

    share(rank) ∝ 1 / (rank + shift)^alpha.  ``alpha`` ≈ 2 with a small
    shift reproduces the Figure 15 bytes CDF, where almost all traffic
    concentrates in the first few percent of VIPs.

    Two caps bound the head, and the binding one wins:

    * ``head_cap`` — a *relative* bound: no VIP exceeds this share of the
      total (keeps tiny test populations from degenerating into a single
      monster VIP);
    * ``max_vip_bps`` — a *physical* bound: one VIP's traffic must fit
      through a single load-balancer vantage point (the paper's HMuxes
      top out around 500 Gbps), so at multi-Tbps totals the absolute cap
      binds and the head flattens the way production traces do.

    The raw Zipf head is water-filled: shares above the cap are clipped
    and the excess redistributed over the tail.
    """

    alpha: float = 2.0
    shift: float = 5.0
    head_cap: float = 0.03
    max_vip_bps: float = 100e9

    def __post_init__(self) -> None:
        if not 0.0 < self.head_cap <= 1.0:
            raise ValueError("head_cap must be in (0, 1]")
        if self.max_vip_bps <= 0:
            raise ValueError("max_vip_bps must be positive")

    def effective_cap(self, total_bps: Optional[float]) -> float:
        """The binding per-VIP share cap for a given total volume."""
        if total_bps is None or total_bps <= 0:
            return self.head_cap
        return min(self.head_cap, self.max_vip_bps / total_bps)

    def shares(
        self, n_vips: int, total_bps: Optional[float] = None
    ) -> np.ndarray:
        """Traffic share per VIP, descending, summing to 1.0."""
        if n_vips < 1:
            raise ValueError("need at least one VIP")
        cap = self.effective_cap(total_bps)
        ranks = np.arange(1, n_vips + 1, dtype=float)
        raw = 1.0 / np.power(ranks + self.shift, self.alpha)
        shares = raw / raw.sum()
        if n_vips * cap <= 1.0:
            # The cap is unsatisfiable (too few VIPs); fall back to uniform.
            return np.full(n_vips, 1.0 / n_vips)
        # Water-fill: clip the head at the cap, renormalize the tail to
        # absorb the excess, repeat until stable.
        for _ in range(64):
            over = shares > cap
            if not over.any():
                break
            excess = float((shares[over] - cap).sum())
            shares[over] = cap
            tail = ~over
            tail_sum = float(shares[tail].sum())
            if tail_sum <= 0.0:
                break
            shares[tail] *= 1.0 + excess / tail_sum
        return np.minimum(shares, cap + 1e-12)


@dataclass(frozen=True)
class DipCountModel:
    """Traffic-correlated log-normal DIP counts.

    Elephant VIPs are backed by big server pools; mice often run on a
    couple of instances.  ``median_small``/``median_large`` anchor the
    distribution at the two ends of the traffic ranking and the count is
    interpolated in log-space by traffic rank, with log-normal noise.
    ``max_dips`` bounds the draw (the TIP mechanism of Figure 7 handles
    VIPs beyond one tunnel table, and tests exercise it explicitly).
    """

    median_small: float = 2.0
    median_large: float = 120.0
    sigma: float = 0.6
    min_dips: int = 1
    max_dips: int = 400
    #: No server sustains more than this much of one VIP's traffic; a
    #: VIP's DIP count is raised (past ``max_dips`` if necessary) until
    #: per-DIP load fits.  This is what ties the Figure 15 DIP CDF to
    #: the bytes CDF: elephants are backed by proportionally large pools.
    max_dip_load_bps: float = 1.0e9

    def counts(
        self, n_vips: int, rng: random.Random
    ) -> List[int]:
        """DIP count per VIP, index-aligned with descending traffic rank."""
        if n_vips < 1:
            raise ValueError("need at least one VIP")
        counts: List[int] = []
        log_small = math.log(self.median_small)
        log_large = math.log(self.median_large)
        for rank in range(n_vips):
            # rank 0 is the biggest VIP; interpolate toward median_small.
            position = rank / max(1, n_vips - 1)
            mu = log_large + (log_small - log_large) * position
            draw = rng.lognormvariate(mu, self.sigma)
            counts.append(
                max(self.min_dips, min(self.max_dips, round(draw)))
            )
        return counts

    def floor_for_traffic(self, traffic_bps: float) -> int:
        """Minimum DIP count so no server carries more than
        ``max_dip_load_bps`` of this VIP."""
        if traffic_bps <= 0:
            return self.min_dips
        return max(self.min_dips, math.ceil(traffic_bps / self.max_dip_load_bps))


@dataclass(frozen=True)
class IngressModel:
    """Where VIP traffic enters the network.

    "almost 70% of the total VIP traffic is generated within DC, and the
    rest is from the Internet" (S2).  Intra-DC traffic originates at
    client racks; Internet traffic enters through the core switches
    (split evenly — the WAN routers hash over them).

    ``client_racks_per_vip`` is the *floor*: an elephant VIP's client
    fan-in grows with its volume so that no single rack sources more
    than ``max_rack_ingress_bps`` on average — a 300 Gbps service is
    consumed DC-wide, not by eight racks (whose uplinks couldn't carry
    it anyway).

    ``diffuse_above_bps`` switches big services to *diffuse* ingress:
    their intra-DC clients are effectively everywhere, so their traffic
    is modelled as sourced uniformly from every rack (and the assignment
    algorithm prices it with one shared template per candidate switch —
    far cheaper than hundreds of explicit legs).
    """

    intra_dc_fraction: float = 0.70
    client_racks_per_vip: int = 8
    max_rack_ingress_bps: float = 2.5e9
    diffuse_above_bps: float = 20e9

    def __post_init__(self) -> None:
        if not 0.0 <= self.intra_dc_fraction <= 1.0:
            raise ValueError("intra_dc_fraction must be within [0, 1]")
        if self.client_racks_per_vip < 1:
            raise ValueError("need at least one client rack per VIP")
        if self.max_rack_ingress_bps <= 0:
            raise ValueError("max_rack_ingress_bps must be positive")
        if self.diffuse_above_bps <= 0:
            raise ValueError("diffuse_above_bps must be positive")

    def is_diffuse(self, traffic_bps: float) -> bool:
        """True when the VIP's intra-DC clients are modelled as DC-wide."""
        return traffic_bps >= self.diffuse_above_bps

    def racks_for(self, traffic_bps: float, n_tors: int) -> int:
        """Client-rack count for a VIP of the given volume."""
        intra = traffic_bps * self.intra_dc_fraction
        needed = math.ceil(intra / self.max_rack_ingress_bps)
        return max(1, min(n_tors, max(self.client_racks_per_vip, needed)))


def empirical_cdf(values: Sequence[float]) -> "tuple[np.ndarray, np.ndarray]":
    """(x, F(x)) pairs of the empirical CDF of ``values``."""
    if len(values) == 0:
        raise ValueError("cannot build a CDF of nothing")
    xs = np.sort(np.asarray(values, dtype=float))
    ys = np.arange(1, len(xs) + 1) / len(xs)
    return xs, ys


def share_concentration(shares: np.ndarray, top_fraction: float) -> float:
    """Fraction of total carried by the top ``top_fraction`` of VIPs.

    Used by tests to pin the skew: e.g. the top 10% of VIPs should carry
    well over 90% of bytes for the default :class:`TrafficSkew`.
    """
    if not 0.0 < top_fraction <= 1.0:
        raise ValueError("top_fraction must be in (0, 1]")
    ordered = np.sort(shares)[::-1]
    k = max(1, int(round(top_fraction * len(ordered))))
    return float(ordered[:k].sum() / ordered.sum())
