"""Epoch trace generation: the 3-hour production trace stand-in.

The paper's large-scale simulations replay a 3-hour trace divided into
10-minute intervals, recalculating the VIP assignment each interval
(S8.1, S8.6); total VIP traffic varies between 6.2 and 7.1 Tbps over the
trace.  This module synthesizes an equivalent trace on top of a
:class:`~repro.workload.vips.VipPopulation`:

* per-VIP traffic evolves as a clamped geometric random walk (services
  ramp up and down),
* occasional *flash* events spike a previously small VIP (the dynamics
  that erode a One-time assignment in Figure 20a),
* a small fraction of VIPs is removed and added each epoch (customer
  churn, S4.2),
* total traffic is renormalized into the paper's observed band.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.workload.vips import VipDemand, VipPopulation


@dataclass(frozen=True)
class TraceConfig:
    """Knobs of the synthetic trace.

    Defaults follow the paper: 18 epochs of 600 s span 3 hours; the total
    band [0.9, 1.03] of the base traffic mirrors the 6.2-7.1 Tbps swing.
    """

    n_epochs: int = 18
    epoch_seconds: float = 600.0
    volatility: float = 0.18        # sigma of per-epoch log traffic step
    flash_probability: float = 0.01  # per-VIP chance of a flash crowd
    flash_multiplier: float = 8.0
    flash_decay: float = 0.5        # flash factor shrinks by this per epoch
    churn_fraction: float = 0.01    # VIPs removed (and added) per epoch
    total_band: Tuple[float, float] = (0.90, 1.03)
    max_drift: float = 50.0         # clamp of the cumulative walk factor
    share_cap: float = 0.03         # max share of the total any VIP reaches

    def __post_init__(self) -> None:
        if self.n_epochs < 1:
            raise ValueError("need at least one epoch")
        if self.volatility < 0:
            raise ValueError("volatility must be non-negative")
        lo, hi = self.total_band
        if not 0 < lo <= hi:
            raise ValueError("total_band must be 0 < low <= high")
        if not 0 <= self.churn_fraction < 1:
            raise ValueError("churn_fraction must be in [0, 1)")
        if not 0 < self.share_cap <= 1:
            raise ValueError("share_cap must be in (0, 1]")


@dataclass(frozen=True)
class TraceEpoch:
    """One 10-minute interval of the trace."""

    index: int
    start_s: float
    demands: Tuple[VipDemand, ...]
    added_vip_ids: Tuple[int, ...] = ()
    removed_vip_ids: Tuple[int, ...] = ()

    @property
    def total_traffic_bps(self) -> float:
        return sum(d.traffic_bps for d in self.demands)

    def demand_by_id(self) -> Dict[int, VipDemand]:
        return {d.vip_id: d for d in self.demands}


def _cap_shares(raw: Dict[int, float], cap: float) -> Dict[int, float]:
    """Water-fill clamp: no VIP exceeds ``cap`` of the epoch total.

    Mirrors the population skew's head cap — a service's traffic cannot
    outgrow what a single load-balancing vantage point can carry, no
    matter how hard a flash crowd hits it.
    """
    if len(raw) <= 1:
        return dict(raw)
    values = dict(raw)
    for _ in range(64):
        total = sum(values.values())
        if total <= 0:
            return values
        limit = cap * total
        over = {vid for vid, v in values.items() if v > limit}
        if not over:
            return values
        excess = sum(values[vid] - limit for vid in over)
        under_sum = sum(v for vid, v in values.items() if vid not in over)
        for vid in over:
            values[vid] = limit
        if under_sum <= 0:
            return values
        boost = 1.0 + excess / under_sum
        for vid in values:
            if vid not in over:
                values[vid] *= boost
    return values


class TraceGenerator:
    """Deterministic (seeded) epoch-by-epoch trace over a population."""

    def __init__(
        self,
        population: VipPopulation,
        config: TraceConfig = TraceConfig(),
        seed: int = 0,
    ) -> None:
        self.population = population
        self.config = config
        self.seed = seed

    def epochs(self) -> List[TraceEpoch]:
        """Materialize the whole trace (a list; traces are small)."""
        return list(self.iter_epochs())

    def iter_epochs(self) -> Iterator[TraceEpoch]:
        rng = random.Random(self.seed)
        config = self.config
        base = {d.vip_id: d for d in self.population.demands()}
        base_total = sum(d.traffic_bps for d in base.values())
        walk: Dict[int, float] = {vid: 1.0 for vid in base}
        flash: Dict[int, float] = {}
        active: Set[int] = set(base)
        removed_pool: List[int] = []

        for index in range(config.n_epochs):
            added: Tuple[int, ...] = ()
            removed: Tuple[int, ...] = ()
            if index > 0:
                walk = self._step_walk(walk, rng)
                flash = self._step_flash(flash, active, rng)
                added, removed = self._churn(active, removed_pool, rng)

            target_total = base_total * rng.uniform(*config.total_band)
            raw = {
                vid: base[vid].traffic_bps
                * walk[vid]
                * flash.get(vid, 1.0)
                for vid in active
            }
            raw = _cap_shares(raw, config.share_cap)
            raw_total = sum(raw.values())
            scale = target_total / raw_total if raw_total > 0 else 0.0
            demands = tuple(
                base[vid].scaled(raw[vid] * scale / base[vid].traffic_bps)
                for vid in sorted(active)
                if base[vid].traffic_bps > 0
            )
            yield TraceEpoch(
                index=index,
                start_s=index * config.epoch_seconds,
                demands=demands,
                added_vip_ids=added,
                removed_vip_ids=removed,
            )

    # -- dynamics ------------------------------------------------------------

    def _step_walk(
        self, walk: Dict[int, float], rng: random.Random
    ) -> Dict[int, float]:
        config = self.config
        stepped: Dict[int, float] = {}
        for vid, factor in walk.items():
            factor *= math.exp(rng.gauss(0.0, config.volatility))
            lo = 1.0 / config.max_drift
            stepped[vid] = min(config.max_drift, max(lo, factor))
        return stepped

    def _step_flash(
        self,
        flash: Dict[int, float],
        active: Set[int],
        rng: random.Random,
    ) -> Dict[int, float]:
        config = self.config
        decayed = {
            vid: 1.0 + (mult - 1.0) * config.flash_decay
            for vid, mult in flash.items()
            if (mult - 1.0) * config.flash_decay > 0.05
        }
        for vid in active:
            if vid not in decayed and rng.random() < config.flash_probability:
                decayed[vid] = config.flash_multiplier
        return decayed

    def _churn(
        self,
        active: Set[int],
        removed_pool: List[int],
        rng: random.Random,
    ) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        """Remove a few active VIPs; re-admit previously removed ones
        (modeling customer VIP removal and addition, S5.2)."""
        config = self.config
        n_churn = int(len(active) * config.churn_fraction)
        if n_churn == 0:
            return (), ()
        victims = rng.sample(sorted(active), min(n_churn, len(active) - 1))
        for vid in victims:
            active.discard(vid)
            removed_pool.append(vid)
        # Re-admit the oldest removals, but never in the same epoch they
        # were removed.
        eligible = removed_pool[:-len(victims)] if victims else removed_pool
        n_add = min(len(eligible), n_churn)
        admitted = eligible[:n_add]
        for vid in admitted:
            removed_pool.remove(vid)
            active.add(vid)
        return tuple(admitted), tuple(victims)
