"""Packet/flow generation for the discrete-event experiments.

The testbed experiments (Figures 1 and 11-13) drive muxes with packet
streams at controlled rates and measure latency with periodic pings.
This module provides deterministic, seeded generators for both.
"""

from __future__ import annotations

import bisect
import random
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.dataplane.packet import (
    DEFAULT_PACKET_BYTES,
    FiveTuple,
    PROTO_ICMP,
    PROTO_TCP,
    PROTO_UDP,
    Packet,
)
from repro.workload.vips import CLIENT_POOL


@dataclass(frozen=True)
class TimedPacket:
    """A packet with its arrival time (seconds)."""

    time_s: float
    packet: Packet


class PoissonPacketStream:
    """Poisson arrivals of UDP packets to a set of VIPs.

    Mirrors the paper's Figure 11 setup ("we send UDP traffic to 10 of
    the VIPs"): each packet goes to a uniformly chosen VIP from a fresh
    random flow, so traffic hashes across all mux ECMP entries.
    """

    def __init__(
        self,
        vips: Sequence[int],
        rate_pps: float,
        *,
        packet_bytes: int = DEFAULT_PACKET_BYTES,
        flows_per_vip: int = 64,
        seed: int = 0,
    ) -> None:
        if not vips:
            raise ValueError("need at least one destination VIP")
        if rate_pps <= 0:
            raise ValueError("rate must be positive")
        self.vips = list(vips)
        self.rate_pps = rate_pps
        self.packet_bytes = packet_bytes
        self.seed = seed
        self._flows = self._make_flows(flows_per_vip)
        # One Poisson process per stream, lazily materialized from t=0
        # and cached so any window query reads the same realization:
        # generate(0, 1) then generate(1, 2) is exactly generate(0, 2).
        self._arrival_times: List[float] = []
        self._arrival_flows: List[int] = []
        self._gen_rng = random.Random((seed << 16) ^ 0xFACE)
        self._gen_now = 0.0

    def _make_flows(self, flows_per_vip: int) -> List[FiveTuple]:
        rng = random.Random(self.seed)
        flows: List[FiveTuple] = []
        for vip in self.vips:
            for _ in range(flows_per_vip):
                client = CLIENT_POOL.network + rng.randrange(1 << 18)
                flows.append(FiveTuple(
                    src_ip=client,
                    dst_ip=vip,
                    src_port=rng.randrange(1024, 65536),
                    dst_port=80,
                    protocol=PROTO_UDP,
                ))
        return flows

    def _extend_to(self, end_s: float) -> None:
        """Materialize the process until the first arrival at or beyond
        ``end_s`` has been drawn (so every arrival < ``end_s`` is cached)."""
        while self._gen_now < end_s:
            self._gen_now += self._gen_rng.expovariate(self.rate_pps)
            self._arrival_times.append(self._gen_now)
            self._arrival_flows.append(
                self._gen_rng.randrange(len(self._flows))
            )

    def generate(self, start_s: float, end_s: float) -> Iterator[TimedPacket]:
        """Packets with exponential inter-arrival times in [start, end).

        Windows compose: the stream is ONE Poisson process from t=0, so
        consecutive (or overlapping, or repeated) windows all observe
        the same arrival realization — ``generate(0, 1)`` followed by
        ``generate(1, 2)`` yields exactly the packets of
        ``generate(0, 2)``.  Arrivals are cached up to the furthest
        window end queried so far (memory grows with ``rate_pps *
        max(end_s)``)."""
        if end_s <= start_s:
            return
        self._extend_to(end_s)
        times = self._arrival_times
        lo = bisect.bisect_left(times, start_s)
        for index in range(lo, len(times)):
            now = times[index]
            if now >= end_s:
                return
            flow = self._flows[self._arrival_flows[index]]
            yield TimedPacket(now, Packet(flow, size_bytes=self.packet_bytes))


class PingProbe:
    """Periodic ICMP-style probes to one VIP (the paper pings every 3 ms
    to measure availability and added latency, Figures 11-13)."""

    def __init__(
        self,
        vip: int,
        interval_s: float = 0.003,
        *,
        client_ip: Optional[int] = None,
        seed: int = 0,
    ) -> None:
        if interval_s <= 0:
            raise ValueError("interval must be positive")
        rng = random.Random(seed)
        self.vip = vip
        self.interval_s = interval_s
        self.client_ip = (
            client_ip if client_ip is not None
            else CLIENT_POOL.network + rng.randrange(1 << 18)
        )
        self._seq_port = rng.randrange(1024, 60000)

    def generate(self, start_s: float, end_s: float) -> Iterator[TimedPacket]:
        """One probe every interval; each probe is its own flow so that
        per-flow ECMP re-rolls (sequence number in the source port)."""
        n = 0
        while True:
            t = start_s + n * self.interval_s
            if t >= end_s:
                return
            flow = FiveTuple(
                src_ip=self.client_ip,
                dst_ip=self.vip,
                src_port=(self._seq_port + n) % 65536,
                dst_port=7,  # echo
                protocol=PROTO_ICMP,
            )
            yield TimedPacket(t, Packet(flow, size_bytes=64))
            n += 1

    def probe_fields(
        self, start_s: float, end_s: float
    ) -> Tuple[np.ndarray, np.ndarray]:
        """The batched counterpart of :meth:`generate`: (times, source
        ports) of every probe in ``[start, end)`` as arrays, in the same
        order and with exactly the same values — the batch scenario
        engine hashes these wholesale instead of materializing packets.
        """
        if end_s <= start_s:
            return np.empty(0), np.empty(0, np.uint64)
        count = max(0, int(np.ceil((end_s - start_s) / self.interval_s)))
        # Float rounding can put the formula off by one probe either
        # way; nudge until the count matches generate()'s loop exactly.
        while start_s + count * self.interval_s < end_s:
            count += 1
        while count > 0 and start_s + (count - 1) * self.interval_s >= end_s:
            count -= 1
        n = np.arange(count)
        times = start_s + n * self.interval_s
        src_ports = ((self._seq_port + n) % 65536).astype(np.uint64)
        return times, src_ports
